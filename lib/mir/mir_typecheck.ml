(* MIR verifier: run after lifting and after every optimisation pass
   ("IR-verified passes"). The discipline is permissive about unknown
   names and opaque fragments — it rejects structurally impossible
   programs (arithmetic on aggregates, assignment to an aggregate,
   aggregate conditions, wrongly typed sat-op operands), not programs
   it merely has incomplete knowledge of. *)

type error = { in_fn : string; msg : string }

let pp_error e = Printf.sprintf "%s: %s" e.in_fn e.msg

let is_aggregate = function
  | Mir_env.Vstruct _ | Mir_env.Varray _ -> true
  | Mir_env.Scalar _ | Mir_env.Vunknown -> false

let is_float = function Mir.Tf32 | Mir.Tf64 -> true | _ -> false

let check_func env (f : C_ast.func) (body : Mir.stmt list) : error list =
  let errors = ref [] in
  let err fmt =
    Printf.ksprintf
      (fun msg -> errors := { in_fn = f.C_ast.fname; msg } :: !errors)
      fmt
  in
  let base_locals =
    List.map (fun (cty, n) -> (n, Mir_env.vty_of_cty env cty)) f.C_ast.args
  in
  (* locals accumulate lexically; C block scoping is approximated by
     treating every declaration as visible from its lift point on,
     which matches how blockgen emits code (unique names per block) *)
  let rec check_expr locals e =
    let ty_of = Mir_env.ty_of_expr env locals in
    let scalar_operand what a =
      match a with
      | Mir.Load p when is_aggregate (Mir_env.place_vty env locals p) ->
          err "%s operand is an aggregate: %s" what (Mir_to_c.expr_to_string a)
      | _ -> ()
    in
    (match e with
    | Mir.Kint _ | Mir.Kfloat _ | Mir.Load _ | Mir.Eopaque _ | Mir.Ecall _ ->
        ()
    | Mir.Eun (_, a) -> scalar_operand "unary" a
    | Mir.Ebin (op, a, b) ->
        scalar_operand (Mir.bop_name op) a;
        scalar_operand (Mir.bop_name op) b;
        if op = Mir.Mod || op = Mir.Shl || op = Mir.Shr || op = Mir.Band
           || op = Mir.Bor || op = Mir.Bxor
        then begin
          (* C constraint: integer-only operators *)
          if is_float (ty_of a) then
            err "%s applied to a float operand: %s" (Mir.bop_name op)
              (Mir_to_c.expr_to_string e);
          if is_float (ty_of b) then
            err "%s applied to a float operand: %s" (Mir.bop_name op)
              (Mir_to_c.expr_to_string e)
        end
    | Mir.Ecast (_, a) -> scalar_operand "cast" a
    | Mir.Equantize (_, a) -> scalar_operand "quantise" a
    | Mir.Esat16 a ->
        scalar_operand "pe_sat16" a;
        if is_float (ty_of a) then
          err "pe_sat16 takes an int32, got a float: %s"
            (Mir_to_c.expr_to_string e)
    | Mir.Esat_add32 (a, b) ->
        scalar_operand "pe_sat_add32" a;
        scalar_operand "pe_sat_add32" b;
        if is_float (ty_of a) || is_float (ty_of b) then
          err "pe_sat_add32 takes int32 operands: %s"
            (Mir_to_c.expr_to_string e)
    | Mir.Emul_shift (a, b, s) ->
        List.iter (scalar_operand "pe_mul_shift") [ a; b; s ]
    | Mir.Eselect (c, _, _) -> scalar_operand "condition" c);
    (* recurse *)
    match e with
    | Mir.Kint _ | Mir.Kfloat _ | Mir.Eopaque _ -> ()
    | Mir.Load p -> check_place locals p
    | Mir.Eun (_, a) | Mir.Ecast (_, a) | Mir.Equantize (_, a) | Mir.Esat16 a
      ->
        check_expr locals a
    | Mir.Ebin (_, a, b) | Mir.Esat_add32 (a, b) ->
        check_expr locals a;
        check_expr locals b
    | Mir.Emul_shift (a, b, c) | Mir.Eselect (a, b, c) ->
        check_expr locals a;
        check_expr locals b;
        check_expr locals c
    | Mir.Ecall (_, args) -> List.iter (check_expr locals) args
  and check_place locals = function
    | Mir.Pvar _ -> ()
    | Mir.Pfield (p, f) ->
        (match Mir_env.place_vty env locals p with
        | Mir_env.Vstruct s -> (
            match Hashtbl.find_opt env.Mir_env.structs s with
            | Some fields when not (List.mem_assoc f fields) ->
                err "struct %s has no field %s" s f
            | _ -> ())
        | Mir_env.Scalar _ ->
            err "field access .%s on a scalar place" f
        | _ -> ());
        check_place locals p
    | Mir.Pindex (p, i) ->
        (match Mir_env.place_vty env locals p with
        | Mir_env.Scalar _ | Mir_env.Vstruct _ ->
            err "index into a non-array place"
        | _ -> ());
        check_place locals p;
        check_expr locals i
  in
  let rec check_stmts locals = function
    | [] -> locals
    | s :: rest ->
        let locals = check_stmt locals s in
        check_stmts locals rest
  and check_stmt locals s =
    match s with
    | Mir.Sdecl (cty, name, init) ->
        Option.iter (check_expr locals) init;
        (name, Mir_env.vty_of_cty env cty) :: locals
    | Mir.Sassign (p, e) ->
        check_place locals p;
        if is_aggregate (Mir_env.place_vty env locals p) then
          err "assignment to aggregate %s"
            (Mir_to_c.expr_to_string (Mir.Load p));
        check_expr locals e;
        (match e with
        | Mir.Load q when is_aggregate (Mir_env.place_vty env locals q) ->
            err "aggregate used as an assigned value"
        | _ -> ());
        locals
    | Mir.Sexpr e | Mir.Sreturn (Some e) ->
        check_expr locals e;
        locals
    | Mir.Sincr p ->
        check_place locals p;
        locals
    | Mir.Sif (c, t, e) ->
        check_expr locals c;
        (match c with
        | Mir.Load p when is_aggregate (Mir_env.place_vty env locals p) ->
            err "aggregate condition"
        | _ -> ());
        ignore (check_stmts locals t);
        ignore (check_stmts locals e);
        locals
    | Mir.Swhile (c, b) ->
        check_expr locals c;
        ignore (check_stmts locals b);
        locals
    | Mir.Sfor (i, c, u, b) ->
        let locals' = check_stmt locals i in
        check_expr locals' c;
        ignore (check_stmt locals' u);
        ignore (check_stmts locals' b);
        locals
    | Mir.Sreturn None | Mir.Scomment _ | Mir.Sopaque _ -> locals
    | Mir.Sblock b ->
        ignore (check_stmts locals b);
        locals
  in
  ignore (check_stmts base_locals body);
  List.rev !errors

exception Verify_failed of string

(* raise on verifier errors; used between optimisation passes *)
let verify_exn env f body =
  match check_func env f body with
  | [] -> ()
  | errs ->
      raise
        (Verify_failed (String.concat "; " (List.map pp_error errs)))
