(* Unit-level MIR pipeline: lift every function of a generated
   translation unit into MIR, verify it, optionally run the
   optimisation passes (re-verifying after each), and lower back to
   the C AST.

   With [opt = false] the pipeline is the identity on the unit —
   [Mir_to_c] is the exact inverse of [Mir_of_c] — so inserting it
   into the codegen path changes nothing observable. With [opt = true]
   the emitted C differs syntactically but is bit-exact under SIL
   execution, which the MIL/SIL differential fuzzer enforces. *)

type lifted = {
  env : Mir_env.t;
  funcs : (C_ast.func * Mir.stmt list) list;
}

(* lift the functions of a unit with its header's declarations in
   scope; analysis checkers consume this directly *)
let lift ~(header : C_ast.item list) (u : C_ast.cunit) : lifted =
  let env = Mir_env.create (header @ u.C_ast.items) in
  let funcs =
    List.filter_map
      (function
        | C_ast.Func_def f -> Some (f, Mir_of_c.lift_stmts f.C_ast.body)
        | _ -> None)
      u.C_ast.items
  in
  { env; funcs }

(* function names called anywhere in a list of C statements *)
let rec calls_in_stmts acc (ss : C_ast.stmt list) =
  let rec in_expr acc (e : C_ast.expr) =
    match e with
    | C_ast.Call (f, args) -> List.fold_left in_expr (f :: acc) args
    | C_ast.Un (_, a) | C_ast.Cast_to (_, a) | C_ast.Field (a, _)
    | C_ast.Arrow (a, _) ->
        in_expr acc a
    | C_ast.Bin (_, a, b) | C_ast.Index (a, b) -> in_expr (in_expr acc a) b
    | C_ast.Ternary (a, b, c) -> in_expr (in_expr (in_expr acc a) b) c
    | C_ast.Int_lit _ | C_ast.Hex_lit _ | C_ast.Float_lit _ | C_ast.Str_lit _
    | C_ast.Var _ ->
        acc
  in
  let in_stmt acc (s : C_ast.stmt) =
    match s with
    | C_ast.Expr e | C_ast.Return (Some e) | C_ast.Decl (_, _, Some e) ->
        in_expr acc e
    | C_ast.Assign (a, b) -> in_expr (in_expr acc a) b
    | C_ast.If (c, t, e) -> calls_in_stmts (calls_in_stmts (in_expr acc c) t) e
    | C_ast.While (c, b) -> calls_in_stmts (in_expr acc c) b
    | C_ast.For (i, c, u, b) ->
        calls_in_stmts (in_expr (calls_in_stmts acc [ i; u ]) c) b
    | C_ast.Block b -> calls_in_stmts acc b
    | C_ast.Decl (_, _, None) | C_ast.Return None | C_ast.Comment _
    | C_ast.Raw _ ->
        acc
  in
  List.fold_left in_stmt acc ss

let is_helper name =
  match name with
  | "pe_sat16" | "pe_sat_add32" | "pe_mul_shift" -> true
  | _ -> Mir.qkind_of_name name <> None

(* drop static pe_* helper definitions nothing calls any more *)
let prune_helpers (items : C_ast.item list) : C_ast.item list =
  let called =
    List.fold_left
      (fun acc it ->
        match it with
        | C_ast.Func_def f when not (is_helper f.C_ast.fname) ->
            calls_in_stmts acc f.C_ast.body
        | _ -> acc)
      [] items
  in
  List.filter
    (function
      | C_ast.Func_def f
        when f.C_ast.static && is_helper f.C_ast.fname
             && not (List.mem f.C_ast.fname called) ->
          false
      | _ -> true)
    items

let process ?(opt = false) ~(header : C_ast.item list) (u : C_ast.cunit) :
    C_ast.cunit =
  let env = Mir_env.create (header @ u.C_ast.items) in
  let init_fn =
    List.fold_left
      (fun acc it ->
        match it with
        | C_ast.Func_def f
          when String.length f.C_ast.fname >= 11
               && String.sub f.C_ast.fname
                    (String.length f.C_ast.fname - 11)
                    11
                  = "_initialize" ->
            f.C_ast.fname
        | _ -> acc)
      "" u.C_ast.items
  in
  (* lift (and with [opt] verify) every function *)
  let lifted =
    List.map
      (function
        | C_ast.Func_def f ->
            let body = Mir_of_c.lift_stmts f.C_ast.body in
            if opt && not (is_helper f.C_ast.fname) then
              Mir_typecheck.verify_exn env f body;
            `F (f, body)
        | it -> `I it)
      u.C_ast.items
  in
  let lifted =
    if not opt then lifted
    else begin
      (* pass 1: fold, so initialiser stores become literals *)
      let lifted =
        List.map
          (function
            | `F (f, body) when not (is_helper f.C_ast.fname) ->
                let body = Mir_opt.optimize env f body in
                Mir_typecheck.verify_exn env f body;
                `F (f, body)
            | x -> x)
          lifted
      in
      (* pass 2: propagate write-once global constants across
         functions, then re-optimise with the new literals in place *)
      let funcs =
        List.filter_map (function `F fb -> Some fb | `I _ -> None) lifted
      in
      let cands = Mir_opt.const_global_candidates env ~init_fn funcs in
      if cands = [] then lifted
      else
        List.map
          (function
            | `F (f, body)
              when (not (is_helper f.C_ast.fname))
                   && not (String.equal f.C_ast.fname init_fn) ->
                let body = Mir_opt.subst_global_loads cands body in
                let body = Mir_opt.optimize env f body in
                Mir_typecheck.verify_exn env f body;
                `F (f, body)
            | x -> x)
          lifted
    end
  in
  let items =
    List.map
      (function
        | `F (f, body) ->
            C_ast.Func_def { f with C_ast.body = Mir_to_c.lower_stmts body }
        | `I it -> it)
      lifted
  in
  let items = if opt then prune_helpers items else items in
  { u with C_ast.items }
