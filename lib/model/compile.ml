exception Compile_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt

type diag_kind =
  | Empty_model
  | Unconnected_input of int
  | Triggered_without_group
  | Algebraic_loop of string list

type diag = {
  d_block : string option;
  d_kind : diag_kind;
  d_msg : string;
}

type t = {
  model : Model.t;
  order : Model.blk array;
  group_order : (Model.group * Model.blk array) list;
  out_types : Dtype.t array array;
  in_types : Dtype.t array array;
  sample : Sample_time.resolved array;
  base_dt : float;
  has_continuous : bool;
}

(* Wiring checks are written as collectors so that [diagnose] can report
   every violation at once; [compile] keeps its historical behaviour of
   raising on the first one. *)
let unconnected_diags m =
  List.concat_map
    (fun b ->
      let spec = Model.spec_of m b in
      List.filter_map
        (fun p ->
          if Model.driver m (b, p) = None then
            Some
              {
                d_block = Some (Model.block_name m b);
                d_kind = Unconnected_input p;
                d_msg =
                  Printf.sprintf "model %s: input %s:%d is unconnected"
                    (Model.name m) (Model.block_name m b) p;
              }
          else None)
        (List.init spec.Block.n_in Fun.id))
    (Model.blocks m)

let triggered_diags m =
  List.filter_map
    (fun b ->
      let spec = Model.spec_of m b in
      if spec.Block.sample = Sample_time.Triggered && Model.group_of m b = None
      then
        Some
          {
            d_block = Some (Model.block_name m b);
            d_kind = Triggered_without_group;
            d_msg =
              Printf.sprintf
                "model %s: %s declares Triggered but belongs to no group"
                (Model.name m) (Model.block_name m b);
          }
      else None)
    (Model.blocks m)

let check_inputs m =
  match unconnected_diags m with
  | [] -> ()
  | d :: _ -> raise (Compile_error d.d_msg)

(* Data-type fixpoint: iterate the per-block output type rules until no
   port type changes. Port types start unknown; a cycle where every block
   merely copies its input type never resolves and is reported. *)
let propagate_types m =
  let n = Model.n_blocks m in
  let out_types = Array.make n [||] in
  let blocks = Model.blocks m in
  List.iter
    (fun b ->
      let spec = Model.spec_of m b in
      out_types.(Model.blk_index b) <- Array.make spec.Block.n_out None)
    blocks;
  let input_types b =
    let spec = Model.spec_of m b in
    Array.init spec.Block.n_in (fun p ->
        match Model.driver m (b, p) with
        | Some (sb, sp) -> out_types.(Model.blk_index sb).(sp)
        | None -> None)
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < n + 2 do
    changed := false;
    incr rounds;
    List.iter
      (fun b ->
        let spec = Model.spec_of m b in
        let ins = input_types b in
        Array.iteri
          (fun p rule ->
            let current = out_types.(Model.blk_index b).(p) in
            if current = None then
              let inferred =
                match rule with
                | Block.Fixed_type dt -> Some dt
                | Block.Same_as i ->
                    if i < Array.length ins then ins.(i) else None
                | Block.Type_fn f -> f ins
              in
              match inferred with
              | Some dt ->
                  out_types.(Model.blk_index b).(p) <- Some dt;
                  changed := true
              | None -> ())
          spec.Block.out_types)
      blocks
  done;
  (* Ports left untyped by the fixpoint (typically inside feedback loops
     of type-copying blocks) default to the language default, double —
     the same rule the paper calls out in §7. *)
  let resolved_out =
    Array.map
      (Array.map (function Some dt -> dt | None -> Dtype.Double))
      out_types
  in
  let in_types = Array.make n [||] in
  List.iter
    (fun b ->
      let spec = Model.spec_of m b in
      in_types.(Model.blk_index b) <-
        Array.init spec.Block.n_in (fun p ->
            match Model.driver m (b, p) with
            | Some (sb, sp) -> resolved_out.(Model.blk_index sb).(sp)
            | None -> assert false))
    blocks;
  (resolved_out, in_types)

(* Sample-time fixpoint. Triggered-group membership dominates; explicit
   specs stick; Inherited takes continuous if any driver is continuous,
   otherwise the fastest driving discrete rate. Sourceless or cyclic
   inherited blocks fall back to the fundamental step afterwards. *)
let resolve_sample m ~default_dt =
  let n = Model.n_blocks m in
  let resolved : Sample_time.resolved option array = Array.make n None in
  let blocks = Model.blocks m in
  List.iter
    (fun b ->
      let spec = Model.spec_of m b in
      let bi = Model.blk_index b in
      match Model.group_of m b with
      | Some _ -> resolved.(bi) <- Some Sample_time.R_triggered
      | None -> (
          match spec.Block.sample with
          | Sample_time.Continuous -> resolved.(bi) <- Some Sample_time.R_continuous
          | Sample_time.Discrete { period; offset } ->
              resolved.(bi) <- Some (Sample_time.R_discrete { period; offset })
          | Sample_time.Const -> resolved.(bi) <- Some Sample_time.R_const
          | Sample_time.Triggered ->
              err "model %s: %s declares Triggered but belongs to no group"
                (Model.name m) (Model.block_name m b)
          | Sample_time.Inherited -> ()))
    blocks;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < n + 2 do
    changed := false;
    incr rounds;
    List.iter
      (fun b ->
        let bi = Model.blk_index b in
        if resolved.(bi) = None then begin
          let spec = Model.spec_of m b in
          let driver_sts =
            List.init spec.Block.n_in (fun p ->
                match Model.driver m (b, p) with
                | Some (sb, _) -> resolved.(Model.blk_index sb)
                | None -> None)
          in
          let known = List.filter_map Fun.id driver_sts in
          let all_known = List.length known = spec.Block.n_in in
          if known <> [] then begin
            let continuous =
              List.exists (fun s -> s = Sample_time.R_continuous) known
            in
            let fastest =
              List.fold_left
                (fun acc s ->
                  match s with
                  | Sample_time.R_discrete { period; _ } ->
                      Some (match acc with None -> period | Some a -> Float.min a period)
                  | _ -> acc)
                None known
            in
            if continuous then begin
              resolved.(bi) <- Some Sample_time.R_continuous;
              changed := true
            end
            else
              match fastest with
              | Some period when all_known ->
                  resolved.(bi) <-
                    Some (Sample_time.R_discrete { period; offset = 0.0 });
                  changed := true
              | Some _ -> () (* wait for remaining drivers *)
              | None ->
                  if all_known then
                    if List.exists (fun s -> s = Sample_time.R_triggered) known
                    then begin
                      resolved.(bi) <- Some Sample_time.R_triggered;
                      changed := true
                    end
                    else if Array.for_all Fun.id spec.Block.feedthrough then begin
                      (* purely algebraic blocks fed only by constants are
                         themselves constant; stateful blocks (any
                         non-feedthrough input) must still run periodically
                         and fall through to the base rate *)
                      resolved.(bi) <- Some Sample_time.R_const;
                      changed := true
                    end
          end
        end)
      blocks
  done;
  (* Fundamental step from what is already known. *)
  let known = Array.to_list resolved |> List.filter_map Fun.id in
  let base_dt =
    match Sample_time.base_step known with Some d -> d | None -> default_dt
  in
  Array.iteri
    (fun bi r ->
      if r = None && bi < n then
        resolved.(bi) <- Some (Sample_time.R_discrete { period = base_dt; offset = 0.0 }))
    resolved;
  let final = Array.map (function Some r -> r | None -> assert false) resolved in
  (final, base_dt)

(* Topological sort over direct-feedthrough data edges. [subset] selects
   the block population (periodic vs one function-call group); edges from
   outside the subset are treated as already-available state. *)
exception Cycle_found of Model.blk list

let sort_subset_exn m subset =
  let in_subset = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace in_subset b ()) subset;
  let deps b =
    let spec = Model.spec_of m b in
    List.init spec.Block.n_in (fun p -> p)
    |> List.filter_map (fun p ->
           if p < Array.length spec.Block.feedthrough && spec.Block.feedthrough.(p)
           then
             match Model.driver m (b, p) with
             | Some (sb, _) when Hashtbl.mem in_subset sb -> Some sb
             | _ -> None
           else None)
  in
  let mark = Hashtbl.create 16 in
  (* 0 = visiting, 1 = done *)
  let order = ref [] in
  let rec visit path b =
    match Hashtbl.find_opt mark b with
    | Some 1 -> ()
    | Some 0 -> raise (Cycle_found (b :: path))
    | Some _ -> assert false
    | None ->
        Hashtbl.replace mark b 0;
        List.iter (visit (b :: path)) (deps b);
        Hashtbl.replace mark b 1;
        order := b :: !order
  in
  List.iter (visit []) subset;
  Array.of_list (List.rev !order)

let cycle_diag m bs =
  let names = List.rev_map (Model.block_name m) bs in
  {
    d_block = (match names with n :: _ -> Some n | [] -> None);
    d_kind = Algebraic_loop names;
    d_msg =
      Printf.sprintf "model %s: algebraic loop: %s" (Model.name m)
        (String.concat " -> " names);
  }

let sort_subset m subset =
  try sort_subset_exn m subset
  with Cycle_found bs -> raise (Compile_error (cycle_diag m bs).d_msg)

let loop_diags m =
  let periodic =
    List.filter (fun b -> Model.group_of m b = None) (Model.blocks m)
  in
  let subsets =
    periodic :: List.map (Model.group_blocks m) (Model.groups m)
  in
  List.filter_map
    (fun subset ->
      match sort_subset_exn m subset with
      | _ -> None
      | exception Cycle_found bs -> Some (cycle_diag m bs))
    subsets

let diagnose m =
  if Model.blocks m = [] then
    [
      {
        d_block = None;
        d_kind = Empty_model;
        d_msg = Printf.sprintf "model %s: empty model" (Model.name m);
      };
    ]
  else unconnected_diags m @ triggered_diags m @ loop_diags m

let compile ?(default_dt = 1e-3) m =
  if Model.blocks m = [] then err "model %s: empty model" (Model.name m);
  check_inputs m;
  let out_types, in_types = propagate_types m in
  let sample, base_dt = resolve_sample m ~default_dt in
  let periodic =
    List.filter (fun b -> Model.group_of m b = None) (Model.blocks m)
  in
  let order = sort_subset m periodic in
  let group_order =
    List.map
      (fun g -> (g, sort_subset m (Model.group_blocks m g)))
      (Model.groups m)
  in
  let has_continuous =
    Array.exists (fun s -> s = Sample_time.R_continuous) sample
  in
  { model = m; order; group_order; out_types; in_types; sample; base_dt; has_continuous }

let resolved_of t b = t.sample.(Model.blk_index b)
let out_type t (b, p) = t.out_types.(Model.blk_index b).(p)

let signal_sources t =
  let n = Model.n_blocks t.model in
  let srcs = Array.make n [||] in
  List.iter
    (fun b ->
      let spec = Model.spec_of t.model b in
      srcs.(Model.blk_index b) <-
        Array.init spec.Block.n_in (fun p ->
            match Model.driver t.model (b, p) with
            | Some s -> s
            | None -> assert false))
    (Model.blocks t.model);
  srcs

let pp_schedule ppf t =
  Format.fprintf ppf "model %s, base step %g s@." (Model.name t.model) t.base_dt;
  Array.iter
    (fun b ->
      let spec = Model.spec_of t.model b in
      Format.fprintf ppf "  %-24s %-12s %a@." (Model.block_name t.model b)
        spec.Block.kind Sample_time.pp_resolved
        t.sample.(Model.blk_index b))
    t.order;
  List.iter
    (fun (g, order) ->
      Format.fprintf ppf "  group %s:@." (Model.group_name t.model g);
      Array.iter
        (fun b -> Format.fprintf ppf "    %s@." (Model.block_name t.model b))
        order)
    t.group_order
