(** Model compilation: static analysis turning a block graph into an
    executable description.

    Compilation performs what Simulink does before simulation or code
    generation: structural validation (every input wired), data type
    propagation to a fixpoint, sample time resolution, fundamental step
    derivation, and execution-order sorting with algebraic loop
    detection. The result feeds both the MIL engine and the PEERT code
    generator, guaranteeing they agree on semantics. *)

exception Compile_error of string

(** One structural violation, as collected by {!diagnose}. [d_msg] is the
    exact text {!compile} would raise as [Compile_error] for the same
    defect. *)
type diag_kind =
  | Empty_model
  | Unconnected_input of int  (** the unconnected input port index *)
  | Triggered_without_group
  | Algebraic_loop of string list  (** block names along the cycle *)

type diag = {
  d_block : string option;  (** offending block name, when located *)
  d_kind : diag_kind;
  d_msg : string;
}

type t = {
  model : Model.t;
  order : Model.blk array;
      (** periodic/continuous blocks in data-dependency execution order *)
  group_order : (Model.group * Model.blk array) list;
      (** per function-call group, its blocks in execution order *)
  out_types : Dtype.t array array;  (** [blk_index -> port -> type] *)
  in_types : Dtype.t array array;
  sample : Sample_time.resolved array;  (** by [blk_index] *)
  base_dt : float;  (** fundamental step *)
  has_continuous : bool;
}

val compile : ?default_dt:float -> Model.t -> t
(** Analyse a model. [default_dt] (default [1e-3]) is used as the base
    step when the model contains no discrete rate (pure continuous
    models) and as the period assigned to unresolvable inherited blocks.
    @raise Compile_error on unconnected inputs, algebraic loops,
    unresolvable data types, or an empty model. *)

val diagnose : Model.t -> diag list
(** Collect {e every} structural violation [compile] would stop at —
    unconnected inputs, orphan Triggered blocks, and algebraic loops in
    the periodic population and each function-call group — instead of
    the first one. Returns [[]] exactly when the structural phase of
    [compile] succeeds. Never raises. *)

val resolved_of : t -> Model.blk -> Sample_time.resolved
val out_type : t -> Model.blk * int -> Dtype.t
val signal_sources : t -> (Model.blk * int) array array
(** For each block (by index), the driving output port of each input. *)

val pp_schedule : Format.formatter -> t -> unit
(** Human-readable execution order listing (block, sample time, types) —
    the "model browser" view used in reports. *)
