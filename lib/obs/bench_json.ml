type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let float_str f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_str f)
  | Str s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
  | Arr l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          emit b v)
        l;
      Buffer.add_char b ']'
  | Obj l ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\":";
          emit b v)
        l;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 1024 in
  emit b v;
  Buffer.contents b

(* ---------- parsing ---------- *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char b '"'; loop ()
          | '\\' -> Buffer.add_char b '\\'; loop ()
          | '/' -> Buffer.add_char b '/'; loop ()
          | 'n' -> Buffer.add_char b '\n'; loop ()
          | 't' -> Buffer.add_char b '\t'; loop ()
          | 'r' -> Buffer.add_char b '\r'; loop ()
          | 'b' -> Buffer.add_char b '\b'; loop ()
          | 'f' -> Buffer.add_char b '\012'; loop ()
          | 'u' ->
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with Failure _ -> fail "bad \\u escape"
              in
              (* BMP only; encode as UTF-8 *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end;
              loop ()
          | _ -> fail "bad escape")
      | c -> Buffer.add_char b c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.contains tok '.' || String.contains tok 'e' || String.contains tok 'E'
    then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj l -> List.assoc_opt key l
  | _ -> None

(* ---------- the BENCH document ---------- *)

let summary_json (hs : Obs.hist_summary) =
  Obj
    [
      ("count", Int hs.Obs.hs_count);
      ("min", Float hs.Obs.hs_min);
      ("max", Float hs.Obs.hs_max);
      ("mean", Float hs.Obs.hs_mean);
      ("p50", Float hs.Obs.hs_p50);
      ("p95", Float hs.Obs.hs_p95);
      ("p99", Float hs.Obs.hs_p99);
    ]

let of_snapshot (snap : Obs.snapshot) =
  [
    ("counters", Obj (List.map (fun (k, v) -> (k, Int v)) snap.Obs.counters));
    ("gauges", Obj (List.map (fun (k, v) -> (k, Float v)) snap.Obs.gauges));
    ( "histograms",
      Obj (List.map (fun (k, hs) -> (k, summary_json hs)) snap.Obs.hists) );
  ]

let git_rev () =
  match Sys.getenv_opt "ECSD_GIT_REV" with
  | Some r when r <> "" -> r
  | _ -> (
      try
        let ic =
          Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null"
        in
        let line = try input_line ic with End_of_file -> "" in
        match (Unix.close_process_in ic, line) with
        | Unix.WEXITED 0, rev when rev <> "" -> rev
        | _ -> "unknown"
      with _ -> "unknown")

let bench ~name ~steps ~wall_s ?(extra = []) snap =
  Obj
    ([
       ("name", Str name);
       ("git_rev", Str (git_rev ()));
       ("steps", Int steps);
       ("wall_s", Float wall_s);
       ( "steps_per_s",
         Float (if wall_s > 0.0 then float_of_int steps /. wall_s else 0.0) );
     ]
    @ extra
    @ of_snapshot snap)

let write ~path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')
