(** Machine-readable benchmark results.

    Serialises a run's {!Obs.snapshot} to the [BENCH_<name>.json] schema
    that tracks the repo's perf trajectory:

    {v
    { "name": "perf", "git_rev": "abc1234", "steps": 200000,
      "wall_s": 1.43, "steps_per_s": 139860.1,
      "counters": {"sim.steps": 200000, ...},
      "gauges": {...},
      "histograms": {"sim.ode.substep_s":
          {"count":..,"min":..,"max":..,"mean":..,"p50":..,"p95":..,"p99":..},
        ...} }
    v}

    Ships its own tiny JSON value type, printer and parser so the bench
    harness and tests can round-trip results without external deps. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact JSON. Non-finite floats are emitted as [null]. *)

val float_str : float -> string
(** Deterministic shortest-round-trip float formatting (the number syntax
    used by {!to_string}). *)

exception Parse_error of string

val parse : string -> t
(** Minimal strict JSON parser (objects, arrays, strings with the
    common escapes, numbers, literals). Numbers without [.eE] parse as
    [Int]. @raise Parse_error on malformed input. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] otherwise. *)

val of_snapshot : Obs.snapshot -> (string * t) list
(** The [counters]/[gauges]/[histograms] fields. *)

val git_rev : unit -> string
(** [ECSD_GIT_REV] env override, else [git rev-parse --short HEAD],
    else ["unknown"]. *)

val bench :
  name:string ->
  steps:int ->
  wall_s:float ->
  ?extra:(string * t) list ->
  Obs.snapshot ->
  t
(** Build the full benchmark document (computes [steps_per_s]). *)

val write : path:string -> t -> unit
