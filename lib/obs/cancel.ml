(* Cooperative cancellation for long-running jobs.

   A token carries an absolute deadline and a shared kill flag; the
   step loops of the execution engines ([Sim.step], [Silvm_app.step],
   the campaign runner) call {!poll} once per step -- their natural
   fuel points -- and a supervisor installs a token around the job with
   {!with_token}. Cancellation is therefore cooperative and prompt to
   within one step, which is exactly the granularity at which the
   engines can be abandoned without corrupting shared state: between
   steps every mutable structure they touch is domain-local and
   reset-able.

   Cost discipline matches the rest of ecsd_obs: with no token
   installed, {!poll} is one domain-local read and a branch; with a
   token it adds an atomic load of the kill flag, and the monotonic
   clock is consulted only every [fuel_quantum] polls, so even the
   sub-microsecond compiled-SIL step loop stays under the supervision
   overhead budget. *)

type reason = Deadline | Killed

exception Cancelled of reason

let reason_name = function Deadline -> "deadline" | Killed -> "killed"

type token = {
  deadline_ns : float;  (* absolute, Obs.now_ns scale; infinity = none *)
  killed : bool Atomic.t;
  mutable fuel : int;  (* polls until the next clock check *)
}

(* 64 polls per clock read: at the compiled engine's ~1 us step this
   bounds deadline-detection latency to well under a millisecond while
   amortising the clock read to noise *)
let fuel_quantum = 64

let make ?deadline_s ?killed () =
  {
    deadline_ns =
      (match deadline_s with
      | Some d when d > 0.0 -> Obs.now_ns () +. (d *. 1e9)
      | _ -> infinity);
    killed = (match killed with Some k -> k | None -> Atomic.make false);
    fuel = fuel_quantum;
  }

let kill t = Atomic.set t.killed true

(* the ambient token of the calling domain, if any *)
let key : token option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let check t =
  if Atomic.get t.killed then raise (Cancelled Killed);
  if t.deadline_ns < infinity then begin
    t.fuel <- t.fuel - 1;
    if t.fuel <= 0 then begin
      t.fuel <- fuel_quantum;
      if Obs.now_ns () > t.deadline_ns then raise (Cancelled Deadline)
    end
  end

let poll () =
  match !(Domain.DLS.get key) with None -> () | Some t -> check t

let with_token t f =
  let slot = Domain.DLS.get key in
  let saved = !slot in
  slot := Some t;
  Fun.protect ~finally:(fun () -> slot := saved) f

let active () = !(Domain.DLS.get key) <> None
