(** Cooperative cancellation tokens.

    The execution engines' step loops are the fuel points: each step
    calls {!poll}, which raises {!Cancelled} when the ambient token's
    deadline has passed or its kill flag was set from another domain.
    Supervisors ({!Supervise}) install a token around a job with
    {!with_token}; code that never installs one pays a single
    domain-local read per poll. *)

type reason =
  | Deadline  (** the token's relative deadline expired *)
  | Killed  (** the shared kill flag was set (shutdown, load shedding) *)

exception Cancelled of reason

val reason_name : reason -> string

type token

val make : ?deadline_s:float -> ?killed:bool Atomic.t -> unit -> token
(** A token expiring [deadline_s] seconds from now (non-positive or
    omitted: never), optionally sharing an external [killed] flag so
    one atomic store cancels a whole fleet of jobs. *)

val kill : token -> unit
(** Set the token's kill flag (its next poll raises [Cancelled Killed]).
    Safe from any domain. *)

val with_token : token -> (unit -> 'a) -> 'a
(** Install the token as the calling domain's ambient token for the
    duration of [f] (restored on exit, exceptions included). Nesting
    shadows the outer token. *)

val poll : unit -> unit
(** The fuel point: raise {!Cancelled} if the ambient token demands it.
    No ambient token — one read, no clock, no allocation. The clock is
    consulted only every 64 polls, so deadline detection lags by at
    most 64 steps of the polling loop. *)

val active : unit -> bool
(** Whether the calling domain currently has an ambient token. *)
