(* Flight recorder: fixed-capacity, per-domain ring buffer of binary trace
   events, cheap enough to leave armed through whole campaigns.

   Design notes, because the determinism bar is unusual:

   - Each domain owns one ring (Domain.DLS); the owning domain is the only
     writer, so recording takes no lock and never allocates on the hot path
     (all slots are preallocated unboxed arrays, structure-of-arrays).

   - Events belong to a logical *track* (the campaign seed / job id), not to
     the domain that happened to execute them. A run calls [begin_track]
     before stepping; every event it records carries the track id and a
     per-track sequence number. When a run fails, [capture] snapshots the
     ring *on the executing domain, filtered to the current track*. Because
     eviction is positional (slot i is simply overwritten), the surviving
     events of track S are always the last [min n_S cap] events S recorded —
     independent of whatever other tracks previously ran on the same domain.
     That is what makes forensics bundles byte-identical whatever [--jobs]
     is: the same seed records the same events in the same order, and the
     capture window depends only on the track's own history.

   - Engine-level events (compile-cache hits/misses, closure compilation)
     are attributed to the pseudo-track [engine_track] = -1. Cache races are
     scheduling-dependent, so they must never leak into a per-run forensics
     bundle; they are still visible via [ring_dump] for interactive use.

   - Bundles carry only virtual time (step index, simulated seconds), never
     wall-clock, so byte-comparison across runs and job counts is exact. *)

type kind = Step | Signal | Fault | Engine | Mark

let kind_name = function
  | Step -> "step"
  | Signal -> "signal"
  | Fault -> "fault"
  | Engine -> "engine"
  | Mark -> "mark"

(* slot encoding: 0 = empty; recorders store 1=step 2=signal 3=fault
   4=engine 5=mark directly *)
let kind_of_code = function
  | 1 -> Step
  | 2 -> Signal
  | 3 -> Fault
  | 4 -> Engine
  | _ -> Mark

type event = {
  ev_kind : kind;
  ev_track : int;
  ev_seq : int;  (* per-track sequence number, 0-based *)
  ev_step : int;  (* simulation step index, -1 if not applicable *)
  ev_time : float;  (* simulated seconds, not wall clock *)
  ev_value : float;
  ev_arg : int;  (* port index / fired flag, event-kind specific *)
  ev_label : string;
}

type ring = {
  cap : int;
  kinds : int array;  (* 0 = empty slot *)
  tracks : int array;
  seqs : int array;
  steps : int array;
  times : float array;
  values : float array;
  args : int array;
  labels : string array;
  mutable next : int;  (* next slot to overwrite *)
  mutable track : int;  (* current logical track *)
  mutable track_name : string;
  mutable seq : int;  (* next seq for the current track *)
  mutable eng_seq : int;  (* next seq for the engine pseudo-track *)
}

let engine_track = -1
let on = ref false
let enabled () = !on
let set_enabled b = on := b

(* read at ring creation; set it before any domain records *)
let default_capacity = ref 4096

let ring_create cap =
  {
    cap;
    kinds = Array.make cap 0;
    tracks = Array.make cap 0;
    seqs = Array.make cap 0;
    steps = Array.make cap 0;
    times = Array.make cap 0.0;
    values = Array.make cap 0.0;
    args = Array.make cap 0;
    labels = Array.make cap "";
    next = 0;
    track = 0;
    track_name = "";
    seq = 0;
    eng_seq = 0;
  }

let ring_key = Domain.DLS.new_key (fun () -> ring_create !default_capacity)
let ring () = Domain.DLS.get ring_key

let set_capacity n =
  if n < 1 then invalid_arg "Flight.set_capacity";
  default_capacity := n;
  Domain.DLS.set ring_key (ring_create n)

let capacity () = (ring ()).cap

let begin_track ~id ~name =
  if !on then begin
    let r = ring () in
    r.track <- id;
    r.track_name <- name;
    r.seq <- 0
  end

let current_track () = (ring ()).track

(* hot path: one bounds check avoided per field via unsafe stores; the slot
   index is (next mod cap) by construction *)
let record r code track seq step time value arg label =
  let i = r.next in
  Array.unsafe_set r.kinds i code;
  Array.unsafe_set r.tracks i track;
  Array.unsafe_set r.seqs i seq;
  Array.unsafe_set r.steps i step;
  Array.unsafe_set r.times i time;
  Array.unsafe_set r.values i value;
  Array.unsafe_set r.args i arg;
  Array.unsafe_set r.labels i label;
  let j = i + 1 in
  r.next <- (if j = r.cap then 0 else j)

let record_track r code step time value arg label =
  let s = r.seq in
  r.seq <- s + 1;
  record r code r.track s step time value arg label

let step_mark ~step ~time label =
  if !on then record_track (ring ()) 1 step time 0.0 0 label

let signal ~step ~time ~port ~value label =
  if !on then record_track (ring ()) 2 step time value port label

(* batched variants: the caller fetched the domain's ring once and
   checked [enabled] itself — per-event cost is then just the stores *)
type recorder = ring

let recorder () = ring ()
let step_mark_r r ~step ~time label = record_track r 1 step time 0.0 0 label

let signal_r r ~step ~time ~port ~value label =
  record_track r 2 step time value port label

let fault ?(step = -1) ~time ~fired label =
  if !on then
    record_track (ring ()) 3 step time 0.0 (if fired then 1 else 0) label

let engine label =
  if !on then begin
    let r = ring () in
    let s = r.eng_seq in
    r.eng_seq <- s + 1;
    record r 4 engine_track s (-1) 0.0 0.0 0 label
  end

let mark ?(step = -1) ?(time = 0.0) ?(value = 0.0) label =
  if !on then record_track (ring ()) 5 step time value 0 label

(* -- capture ------------------------------------------------------------- *)

type bundle = {
  b_track : int;
  b_name : string;
  b_reason : string;
  b_dropped : int;  (* events of this track evicted before capture *)
  b_events : event list;  (* seq ascending *)
}

let cap_mutex = Mutex.create ()
let cap_tbl : (int, bundle) Hashtbl.t = Hashtbl.create 8

let snapshot_track r ~reason =
  let evs = ref [] in
  for i = r.cap - 1 downto 0 do
    if r.kinds.(i) <> 0 && r.tracks.(i) = r.track then
      evs :=
        {
          ev_kind = kind_of_code r.kinds.(i);
          ev_track = r.tracks.(i);
          ev_seq = r.seqs.(i);
          ev_step = r.steps.(i);
          ev_time = r.times.(i);
          ev_value = r.values.(i);
          ev_arg = r.args.(i);
          ev_label = r.labels.(i);
        }
        :: !evs
  done;
  let events =
    List.sort (fun a b -> compare a.ev_seq b.ev_seq) !evs
  in
  {
    b_track = r.track;
    b_name = r.track_name;
    b_reason = reason;
    b_dropped = r.seq - List.length events;
    b_events = events;
  }

(* First capture per track wins: a run's first divergence is the forensic
   moment; later captures of the same track (retries, later failures) are
   ignored so the bundle is stable. *)
let capture ~reason =
  if !on then begin
    let b = snapshot_track (ring ()) ~reason in
    Mutex.lock cap_mutex;
    if not (Hashtbl.mem cap_tbl b.b_track) then
      Hashtbl.replace cap_tbl b.b_track b;
    Mutex.unlock cap_mutex
  end

let captures () =
  Mutex.lock cap_mutex;
  let l = Hashtbl.fold (fun _ b acc -> b :: acc) cap_tbl [] in
  Mutex.unlock cap_mutex;
  List.sort (fun a b -> compare a.b_track b.b_track) l

let clear_captures () =
  Mutex.lock cap_mutex;
  Hashtbl.reset cap_tbl;
  Mutex.unlock cap_mutex

let reset () =
  clear_captures ();
  Domain.DLS.set ring_key (ring_create !default_capacity)

(* raw dump of the calling domain's ring, oldest first; interactive use *)
let ring_dump () =
  let r = ring () in
  let evs = ref [] in
  for k = r.cap - 1 downto 0 do
    let i = (r.next + k) mod r.cap in
    if r.kinds.(i) <> 0 then
      evs :=
        {
          ev_kind = kind_of_code r.kinds.(i);
          ev_track = r.tracks.(i);
          ev_seq = r.seqs.(i);
          ev_step = r.steps.(i);
          ev_time = r.times.(i);
          ev_value = r.values.(i);
          ev_arg = r.args.(i);
          ev_label = r.labels.(i);
        }
        :: !evs
  done;
  !evs

(* -- export -------------------------------------------------------------- *)

let event_json e =
  Bench_json.Obj
    [
      ("kind", Bench_json.Str (kind_name e.ev_kind));
      ("track", Bench_json.Int e.ev_track);
      ("seq", Bench_json.Int e.ev_seq);
      ("step", Bench_json.Int e.ev_step);
      ("time", Bench_json.Float e.ev_time);
      ("value", Bench_json.Float e.ev_value);
      ("arg", Bench_json.Int e.ev_arg);
      ("label", Bench_json.Str e.ev_label);
    ]

let bundle_jsonl b buf =
  Buffer.add_string buf
    (Bench_json.to_string
       (Bench_json.Obj
          [
            ("bundle", Bench_json.Int b.b_track);
            ("name", Bench_json.Str b.b_name);
            ("reason", Bench_json.Str b.b_reason);
            ("events", Bench_json.Int (List.length b.b_events));
            ("dropped", Bench_json.Int b.b_dropped);
          ]));
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      Buffer.add_string buf (Bench_json.to_string (event_json e));
      Buffer.add_char buf '\n')
    b.b_events

(* one JSONL document for all captured bundles, sorted by track id:
   byte-identical however the tracks were scheduled *)
let captures_jsonl () =
  let buf = Buffer.create 4096 in
  List.iter (fun b -> bundle_jsonl b buf) (captures ());
  Buffer.contents buf

let esc s =
  let b = Buffer.create (String.length s) in
  Obs.json_escape b s;
  Buffer.contents b

(* Chrome-trace view: one lane (tid) per track, instant events placed at
   simulated-microsecond timestamps *)
let captures_chrome () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf s
  in
  emit
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
     \"args\":{\"name\":\"ecsd flight recorder\"}}";
  List.iter
    (fun b ->
      let tid = b.b_track + 2 in
      (* keep tids positive; engine pseudo-track -1 maps to 1 *)
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\
            \"args\":{\"name\":\"track %d %s\"}}"
           tid b.b_track (esc b.b_name));
      List.iter
        (fun e ->
          let ts = e.ev_time *. 1e6 in
          emit
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\
                \"ts\":%s,\"pid\":1,\"tid\":%d,\"args\":{\"seq\":%d,\
                \"step\":%d,\"value\":%s,\"arg\":%d}}"
               (esc e.ev_label)
               (kind_name e.ev_kind)
               (Bench_json.float_str ts)
               tid e.ev_seq e.ev_step
               (Bench_json.float_str e.ev_value)
               e.ev_arg))
        b.b_events)
    (captures ());
  Buffer.add_string buf "]\n";
  Buffer.contents buf

(* Write FLIGHT_<name>.jsonl + FLIGHT_<name>_trace.json when any bundles were
   captured; returns the pair of paths. *)
let write_captures ~prefix =
  if captures () = [] then None
  else begin
    let jsonl_path = prefix ^ ".jsonl" in
    let trace_path = prefix ^ "_trace.json" in
    let dump path s =
      let oc = open_out path in
      output_string oc s;
      close_out oc
    in
    dump jsonl_path (captures_jsonl ());
    dump trace_path (captures_chrome ());
    Some (jsonl_path, trace_path)
  end
