(** Flight recorder: per-domain, fixed-capacity ring of binary trace events.

    Always-on-grade instrumentation for campaigns: recording an event is a
    handful of unboxed array stores on the owning domain (no lock, no
    allocation), and a disabled recorder costs one ref read.

    Events belong to a logical {e track} — the campaign seed or serve job
    id — not to the domain that executed them. A run calls {!begin_track}
    before stepping; on failure it calls {!capture}, which snapshots the
    last [capacity] events {e of that track} from the executing domain's
    ring. Because each track's events and its capture point are functions
    of the run alone, the resulting forensics bundles are byte-identical
    whatever [--jobs] is. Engine-level events (compile cache, closure
    compilation) are scheduling-dependent and live on the pseudo-track
    {!engine_track}, which is never captured into bundles.

    Bundles carry only virtual time (step index, simulated seconds). *)

type kind = Step | Signal | Fault | Engine | Mark

val kind_name : kind -> string

type event = {
  ev_kind : kind;
  ev_track : int;
  ev_seq : int;  (** per-track sequence number, 0-based *)
  ev_step : int;  (** simulation step index, [-1] if not applicable *)
  ev_time : float;  (** simulated seconds, never wall clock *)
  ev_value : float;
  ev_arg : int;  (** kind-specific: port index, fired flag *)
  ev_label : string;
}

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Enable recording process-wide. Flip before spawning worker domains. *)

val set_capacity : int -> unit
(** Ring slots per domain (default 4096). Takes effect for rings created
    after the call; also replaces the calling domain's ring. Set it before
    any worker domain records. *)

val capacity : unit -> int

val engine_track : int
(** Pseudo-track ([-1]) for compile/cache events; excluded from bundles. *)

val begin_track : id:int -> name:string -> unit
(** Start (or resume) logical track [id] on the calling domain and reset
    its per-track sequence counter. *)

val current_track : unit -> int

(** Hot-path recorders; no-ops when disabled. *)

val step_mark : step:int -> time:float -> string -> unit
val signal : step:int -> time:float -> port:int -> value:float -> string -> unit
val fault : ?step:int -> time:float -> fired:bool -> string -> unit
val engine : string -> unit
val mark : ?step:int -> ?time:float -> ?value:float -> string -> unit

(** {2 Batched hot path}

    A [recorder] is the calling domain's ring, fetched once (one DLS
    lookup) and then used for a burst of events — e.g. one simulation
    step's marker plus every probed output. The [_r] recorders skip the
    {!enabled} check: only use them after [enabled ()] returned true,
    never share a recorder across domains, and never hold one beyond
    the current burst. *)

type recorder

val recorder : unit -> recorder
val step_mark_r : recorder -> step:int -> time:float -> string -> unit

val signal_r :
  recorder -> step:int -> time:float -> port:int -> value:float -> string -> unit

(** {2 Forensics capture} *)

type bundle = {
  b_track : int;
  b_name : string;
  b_reason : string;
  b_dropped : int;  (** events of this track evicted before capture *)
  b_events : event list;  (** ascending [ev_seq] *)
}

val capture : reason:string -> unit
(** Snapshot the calling domain's ring filtered to the current track into
    the global capture store. First capture per track wins. *)

val captures : unit -> bundle list
(** All captured bundles, sorted by track id. *)

val clear_captures : unit -> unit

val reset : unit -> unit
(** Clear captures and replace the calling domain's ring. *)

val ring_dump : unit -> event list
(** Raw contents of the calling domain's ring, oldest first (all tracks,
    including {!engine_track}); interactive use only. *)

(** {2 Export} *)

val captures_jsonl : unit -> string
(** One JSONL document for all bundles: a header line per bundle followed
    by its events. Byte-identical however tracks were scheduled. *)

val captures_chrome : unit -> string
(** Chrome-trace (chrome://tracing) view: one lane per track, instant
    events at simulated-microsecond timestamps. *)

val write_captures : prefix:string -> (string * string) option
(** Write [<prefix>.jsonl] and [<prefix>_trace.json] if any bundles were
    captured; [None] when there is nothing to write. *)

val event_json : event -> Bench_json.t
