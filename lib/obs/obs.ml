(* Tracing spans + metrics. Hot-path discipline: every mutating entry
   point starts with an [if not !on then ...] bail-out that touches no
   heap, reads no clock and takes no lock, so a disabled build pays one
   load + branch per call site. *)

let on = ref false
let wall0 = ref 0.0
let enabled () = !on
let now_ns () = Int64.to_float (Monotonic_clock.now ())

let set_enabled b =
  if b && not !on then wall0 := Unix.gettimeofday ();
  on := b

let wall_anchor () = !wall0

(* ---------- spans ---------- *)

type span = {
  sp_name : string;
  sp_start_ns : float;
  sp_dur_ns : float;
  sp_depth : int;
  sp_count : int;
}

let dummy_span =
  { sp_name = ""; sp_start_ns = 0.0; sp_dur_ns = 0.0; sp_depth = 0; sp_count = 0 }

let ring = ref (Array.make 8192 dummy_span)
let ring_next = ref 0  (* next write slot *)
let ring_total = ref 0  (* spans ever completed since reset *)

let set_ring_capacity n =
  if n < 1 then invalid_arg "Obs.set_ring_capacity";
  ring := Array.make n dummy_span;
  ring_next := 0;
  ring_total := 0

let max_depth = 64
let stack_name = Array.make max_depth ""
let stack_t0 = Array.make max_depth 0.0
let stack_cnt = Array.make max_depth 0
let depth = ref 0

let push_ring sp =
  let r = !ring in
  r.(!ring_next) <- sp;
  ring_next := (!ring_next + 1) mod Array.length r;
  incr ring_total

let span_begin name =
  if !on then begin
    let d = !depth in
    if d < max_depth then begin
      stack_name.(d) <- name;
      stack_cnt.(d) <- 0;
      stack_t0.(d) <- now_ns ()
    end;
    depth := d + 1
  end

let span_end () =
  if !on && !depth > 0 then begin
    let d = !depth - 1 in
    depth := d;
    if d < max_depth then
      push_ring
        {
          sp_name = stack_name.(d);
          sp_start_ns = stack_t0.(d);
          sp_dur_ns = now_ns () -. stack_t0.(d);
          sp_depth = d;
          sp_count = stack_cnt.(d);
        }
  end

let span name f =
  if not !on then f ()
  else begin
    span_begin name;
    Fun.protect ~finally:span_end f
  end

let bump n =
  if !on then begin
    let d = !depth - 1 in
    if d >= 0 && d < max_depth then stack_cnt.(d) <- stack_cnt.(d) + n
  end

let spans () =
  let r = !ring in
  let cap = Array.length r in
  let n = min !ring_total cap in
  let first = if !ring_total <= cap then 0 else !ring_next in
  Array.init n (fun i -> r.((first + i) mod cap))

(* ---------- counters / gauges ---------- *)

type counter = { c_name : string; mutable c_value : int }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, float ref) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.replace counters name c;
      c

let add c n = if !on then c.c_value <- c.c_value + n
let counter_value c = c.c_value
let incr_counter ?(by = 1) name = add (counter name) by

let set_gauge name v =
  if !on then
    match Hashtbl.find_opt gauges name with
    | Some r -> r := v
    | None -> Hashtbl.replace gauges name (ref v)

(* ---------- histograms ----------

   Bucket = (clamped binary exponent, 16 linear sub-buckets of the
   mantissa): frexp gives m in [0.5,1) and e with v = m * 2^e; index
   (e+64)*16 + floor((m-0.5)*32) covers ~2^-64 .. 2^63 with <= ~6 %
   relative quantile error. Bucket 0 doubles as the underflow/<=0 bin. *)

let n_sub = 16
let n_exp = 128
let n_buckets = n_sub * n_exp (* 2048 *)

type hist = {
  h_name : string;
  buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

let hists : (string, hist) Hashtbl.t = Hashtbl.create 16

let hist name =
  match Hashtbl.find_opt hists name with
  | Some h -> h
  | None ->
      let h =
        {
          h_name = name;
          buckets = Array.make n_buckets 0;
          h_count = 0;
          h_sum = 0.0;
          h_min = infinity;
          h_max = neg_infinity;
        }
      in
      Hashtbl.replace hists name h;
      h

let bucket_of v =
  if v <= 0.0 || Float.is_nan v then 0
  else begin
    let m, e = Float.frexp v in
    if e < -63 then 0
    else if e > 63 then n_buckets - 1
    else begin
      let sub = int_of_float ((m -. 0.5) *. 32.0) in
      let sub = if sub < 0 then 0 else if sub > 15 then 15 else sub in
      ((e + 64) * n_sub) + sub
    end
  end

(* midpoint of the bucket's value range *)
let bucket_value i =
  let e = (i / n_sub) - 64 in
  let sub = i mod n_sub in
  Float.ldexp (0.5 +. ((float_of_int sub +. 0.5) /. 32.0)) e

let record h v =
  if !on then begin
    let i = bucket_of v in
    h.buckets.(i) <- h.buckets.(i) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end

let record_named name v = record (hist name) v

let hist_quantile h q =
  if h.h_count = 0 then 0.0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let target =
      let r = int_of_float (Float.round (q *. float_of_int h.h_count)) in
      if r < 1 then 1 else r
    in
    let acc = ref 0 and i = ref 0 and result = ref h.h_max in
    (try
       while !i < n_buckets do
         acc := !acc + h.buckets.(!i);
         if !acc >= target then begin
           result := bucket_value !i;
           raise Exit
         end;
         incr i
       done
     with Exit -> ());
    (* exact bounds beat the bucket midpoint at the extremes *)
    if !result < h.h_min then h.h_min
    else if !result > h.h_max then h.h_max
    else !result
  end

type hist_summary = {
  hs_count : int;
  hs_min : float;
  hs_max : float;
  hs_mean : float;
  hs_p50 : float;
  hs_p95 : float;
  hs_p99 : float;
}

let hist_summary h =
  if h.h_count = 0 then
    {
      hs_count = 0; hs_min = 0.0; hs_max = 0.0; hs_mean = 0.0;
      hs_p50 = 0.0; hs_p95 = 0.0; hs_p99 = 0.0;
    }
  else
    {
      hs_count = h.h_count;
      hs_min = h.h_min;
      hs_max = h.h_max;
      hs_mean = h.h_sum /. float_of_int h.h_count;
      hs_p50 = hist_quantile h 0.50;
      hs_p95 = hist_quantile h 0.95;
      hs_p99 = hist_quantile h 0.99;
    }

(* ---------- snapshot / reset ---------- *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  hists : (string * hist_summary) list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  {
    counters =
      Hashtbl.fold (fun k c acc -> (k, c.c_value) :: acc) counters []
      |> List.sort by_name;
    gauges =
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) gauges []
      |> List.sort by_name;
    hists =
      Hashtbl.fold (fun k h acc -> (k, hist_summary h) :: acc) hists []
      |> List.sort by_name;
  }

let reset () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  Hashtbl.reset gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.buckets 0 n_buckets 0;
      h.h_count <- 0;
      h.h_sum <- 0.0;
      h.h_min <- infinity;
      h.h_max <- neg_infinity)
    hists;
  ring_next := 0;
  ring_total := 0;
  depth := 0

(* ---------- Chrome trace export ---------- *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let chrome_trace () =
  let sps = spans () in
  let t0 =
    Array.fold_left
      (fun acc sp -> if sp.sp_start_ns < acc then sp.sp_start_ns else acc)
      infinity sps
  in
  let t0 = if Float.is_finite t0 then t0 else 0.0 in
  let b = Buffer.create (4096 + (Array.length sps * 96)) in
  Buffer.add_string b "{\"traceEvents\":[";
  Buffer.add_string b
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"ecsd\",\"wall_start\":%.6f}}"
       !wall0);
  Array.iter
    (fun sp ->
      Buffer.add_string b ",{\"name\":\"";
      json_escape b sp.sp_name;
      Buffer.add_string b
        (Printf.sprintf
           "\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"depth\":%d,\"count\":%d}}"
           ((sp.sp_start_ns -. t0) /. 1e3)
           (sp.sp_dur_ns /. 1e3) sp.sp_depth sp.sp_count))
    sps;
  Buffer.add_string b "]}";
  Buffer.contents b

let write_chrome_trace ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_trace ()))
