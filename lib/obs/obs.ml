(* Tracing spans + metrics, multicore edition. Hot-path discipline is
   unchanged: every mutating entry point starts with an [if not !on]
   bail-out that touches no heap, reads no clock and takes no lock, so a
   disabled build pays one load + branch per call site.

   Collection state is *domain-local*: each domain owns a private sink
   (counters, gauges, histograms, span ring + stack) reached through
   [Domain.DLS], so worker domains of the campaign pool record without
   any synchronisation. Cold paths move data between domains: a worker
   calls [publish] to fold its sink into the process-wide [published]
   aggregate (one mutex, coarse granularity — once per campaign job),
   and every read API (snapshot, counter_value, spans, ...) reports the
   current domain's sink merged with the published aggregate. Merging
   is defined by {!Export.merge}: commutative and associative on
   counters and histogram buckets, so totals are independent of which
   domain ran which job. *)

let on = ref false
let wall0 = ref 0.0
let enabled () = !on
let now_ns () = Int64.to_float (Monotonic_clock.now ())

let set_enabled b =
  if b && not !on then wall0 := Unix.gettimeofday ();
  on := b

let wall_anchor () = !wall0

(* ---------- registry: names <-> dense ids, process-wide ---------- *)

type counter = { c_id : int; c_name : string }
type hist = { h_id : int; h_name : string }

let reg_mutex = Mutex.create ()
let counter_reg : (string, counter) Hashtbl.t = Hashtbl.create 32
let hist_reg : (string, hist) Hashtbl.t = Hashtbl.create 16
let counter_names : string list ref = ref [] (* newest first, by id desc *)
let hist_names : string list ref = ref []
let n_counter_ids = ref 0
let n_hist_ids = ref 0

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let counter name =
  locked reg_mutex @@ fun () ->
  match Hashtbl.find_opt counter_reg name with
  | Some c -> c
  | None ->
      let c = { c_id = !n_counter_ids; c_name = name } in
      incr n_counter_ids;
      counter_names := name :: !counter_names;
      Hashtbl.replace counter_reg name c;
      c

let hist name =
  locked reg_mutex @@ fun () ->
  match Hashtbl.find_opt hist_reg name with
  | Some h -> h
  | None ->
      let h = { h_id = !n_hist_ids; h_name = name } in
      incr n_hist_ids;
      hist_names := name :: !hist_names;
      Hashtbl.replace hist_reg name h;
      h

let all_counters () =
  locked reg_mutex @@ fun () ->
  List.rev_map (fun n -> Hashtbl.find counter_reg n) !counter_names

let all_hists () =
  locked reg_mutex @@ fun () ->
  List.rev_map (fun n -> Hashtbl.find hist_reg n) !hist_names

(* ---------- spans ---------- *)

type span = {
  sp_name : string;
  sp_start_ns : float;
  sp_dur_ns : float;
  sp_depth : int;
  sp_count : int;
  sp_dom : int;  (* domain the span completed on; Chrome lane assignment *)
}

let dummy_span =
  {
    sp_name = "";
    sp_start_ns = 0.0;
    sp_dur_ns = 0.0;
    sp_depth = 0;
    sp_count = 0;
    sp_dom = 0;
  }

let max_depth = 64

(* ---------- histograms ----------

   Bucket = (clamped binary exponent, 16 linear sub-buckets of the
   mantissa): frexp gives m in [0.5,1) and e with v = m * 2^e; index
   (e+64)*16 + floor((m-0.5)*32) covers ~2^-64 .. 2^63 with <= ~6 %
   relative quantile error. Bucket 0 doubles as the underflow/<=0 bin. *)

let n_sub = 16
let n_exp = 128
let n_buckets = n_sub * n_exp (* 2048 *)

type hcell = {
  buckets : int array;
  mutable hc_count : int;
  mutable hc_sum : float;
  mutable hc_min : float;
  mutable hc_max : float;
}

let hcell_create () =
  {
    buckets = Array.make n_buckets 0;
    hc_count = 0;
    hc_sum = 0.0;
    hc_min = infinity;
    hc_max = neg_infinity;
  }

let hcell_clear c =
  Array.fill c.buckets 0 n_buckets 0;
  c.hc_count <- 0;
  c.hc_sum <- 0.0;
  c.hc_min <- infinity;
  c.hc_max <- neg_infinity

let hcell_fold ~into src =
  for i = 0 to n_buckets - 1 do
    into.buckets.(i) <- into.buckets.(i) + src.buckets.(i)
  done;
  into.hc_count <- into.hc_count + src.hc_count;
  into.hc_sum <- into.hc_sum +. src.hc_sum;
  if src.hc_min < into.hc_min then into.hc_min <- src.hc_min;
  if src.hc_max > into.hc_max then into.hc_max <- src.hc_max

let hcell_copy c =
  {
    buckets = Array.copy c.buckets;
    hc_count = c.hc_count;
    hc_sum = c.hc_sum;
    hc_min = c.hc_min;
    hc_max = c.hc_max;
  }

(* ---------- per-domain sink ---------- *)

type sink = {
  mutable counts : int array; (* indexed by counter id *)
  mutable hcells : hcell option array; (* indexed by hist id *)
  sk_gauges : (string, float ref) Hashtbl.t;
  mutable ring : span array;
  mutable ring_next : int; (* next write slot *)
  mutable ring_total : int; (* spans ever completed since reset *)
  stack_name : string array;
  stack_t0 : float array;
  stack_cnt : int array;
  mutable depth : int;
}

let sink_create ?(ring_cap = 8192) () =
  {
    counts = Array.make 64 0;
    hcells = Array.make 16 None;
    sk_gauges = Hashtbl.create 8;
    ring = Array.make ring_cap dummy_span;
    ring_next = 0;
    ring_total = 0;
    stack_name = Array.make max_depth "";
    stack_t0 = Array.make max_depth 0.0;
    stack_cnt = Array.make max_depth 0;
    depth = 0;
  }

let sink_clear s =
  Array.fill s.counts 0 (Array.length s.counts) 0;
  Array.iter (function Some c -> hcell_clear c | None -> ()) s.hcells;
  Hashtbl.reset s.sk_gauges;
  s.ring_next <- 0;
  s.ring_total <- 0;
  s.depth <- 0

let sink_key = Domain.DLS.new_key (fun () -> sink_create ())
let local () = Domain.DLS.get sink_key

(* the cross-domain aggregate, fed by [publish] *)
let published = sink_create ()
let pub_mutex = Mutex.create ()

let grow_pow2 need len =
  let n = ref (max 16 len) in
  while !n <= need do
    n := !n * 2
  done;
  !n

let counts_cell s id =
  let len = Array.length s.counts in
  if id >= len then begin
    let a = Array.make (grow_pow2 id len) 0 in
    Array.blit s.counts 0 a 0 len;
    s.counts <- a
  end;
  s.counts

let hcell_of s id =
  let len = Array.length s.hcells in
  if id >= len then begin
    let a = Array.make (grow_pow2 id len) None in
    Array.blit s.hcells 0 a 0 len;
    s.hcells <- a
  end;
  match s.hcells.(id) with
  | Some c -> c
  | None ->
      let c = hcell_create () in
      s.hcells.(id) <- Some c;
      c

let set_ring_capacity n =
  if n < 1 then invalid_arg "Obs.set_ring_capacity";
  let s = local () in
  s.ring <- Array.make n dummy_span;
  s.ring_next <- 0;
  s.ring_total <- 0

let push_ring s sp =
  let r = s.ring in
  r.(s.ring_next) <- sp;
  s.ring_next <- (s.ring_next + 1) mod Array.length r;
  s.ring_total <- s.ring_total + 1

let span_begin name =
  if !on then begin
    let s = local () in
    let d = s.depth in
    if d < max_depth then begin
      s.stack_name.(d) <- name;
      s.stack_cnt.(d) <- 0;
      s.stack_t0.(d) <- now_ns ()
    end;
    s.depth <- d + 1
  end

let span_end () =
  if !on then begin
    let s = local () in
    if s.depth > 0 then begin
      let d = s.depth - 1 in
      s.depth <- d;
      if d < max_depth then
        push_ring s
          {
            sp_name = s.stack_name.(d);
            sp_start_ns = s.stack_t0.(d);
            sp_dur_ns = now_ns () -. s.stack_t0.(d);
            sp_depth = d;
            sp_count = s.stack_cnt.(d);
            sp_dom = (Domain.self () :> int);
          }
    end
  end

let span name f =
  if not !on then f ()
  else begin
    span_begin name;
    Fun.protect ~finally:span_end f
  end

let bump n =
  if !on then begin
    let s = local () in
    let d = s.depth - 1 in
    if d >= 0 && d < max_depth then s.stack_cnt.(d) <- s.stack_cnt.(d) + n
  end

let sink_spans s =
  let r = s.ring in
  let cap = Array.length r in
  let n = min s.ring_total cap in
  let first = if s.ring_total <= cap then 0 else s.ring_next in
  Array.init n (fun i -> r.((first + i) mod cap))

let span_order a b =
  (* deterministic total order: permutation-independent merging *)
  let c = Float.compare a.sp_start_ns b.sp_start_ns in
  if c <> 0 then c
  else
    let c = Float.compare a.sp_dur_ns b.sp_dur_ns in
    if c <> 0 then c
    else
      let c = String.compare a.sp_name b.sp_name in
      if c <> 0 then c
      else
        let c = compare a.sp_depth b.sp_depth in
        if c <> 0 then c
        else
          let c = compare a.sp_count b.sp_count in
          if c <> 0 then c else compare a.sp_dom b.sp_dom

let spans () =
  let own = sink_spans (local ()) in
  let pub = locked pub_mutex (fun () -> sink_spans published) in
  if Array.length pub = 0 then own
  else begin
    let all = Array.append pub own in
    Array.sort span_order all;
    all
  end

(* ---------- counters / gauges ---------- *)

let add c n =
  if !on then begin
    let counts = counts_cell (local ()) c.c_id in
    counts.(c.c_id) <- counts.(c.c_id) + n
  end

let read_count s id = if id < Array.length s.counts then s.counts.(id) else 0

let counter_value c =
  read_count (local ()) c.c_id
  + locked pub_mutex (fun () -> read_count published c.c_id)

let incr_counter ?(by = 1) name = add (counter name) by

let set_gauge name v =
  if !on then
    let s = local () in
    match Hashtbl.find_opt s.sk_gauges name with
    | Some r -> r := v
    | None -> Hashtbl.replace s.sk_gauges name (ref v)

(* ---------- histogram recording ---------- *)

let bucket_of v =
  if v <= 0.0 || Float.is_nan v then 0
  else begin
    let m, e = Float.frexp v in
    if e < -63 then 0
    else if e > 63 then n_buckets - 1
    else begin
      let sub = int_of_float ((m -. 0.5) *. 32.0) in
      let sub = if sub < 0 then 0 else if sub > 15 then 15 else sub in
      ((e + 64) * n_sub) + sub
    end
  end

(* midpoint of the bucket's value range *)
let bucket_value i =
  let e = (i / n_sub) - 64 in
  let sub = i mod n_sub in
  Float.ldexp (0.5 +. ((float_of_int sub +. 0.5) /. 32.0)) e

let record h v =
  if !on then begin
    let c = hcell_of (local ()) h.h_id in
    let i = bucket_of v in
    c.buckets.(i) <- c.buckets.(i) + 1;
    c.hc_count <- c.hc_count + 1;
    c.hc_sum <- c.hc_sum +. v;
    if v < c.hc_min then c.hc_min <- v;
    if v > c.hc_max then c.hc_max <- v
  end

let record_named name v = record (hist name) v

(* merged view of one histogram: own sink (+) published *)
let hcell_view h =
  let merged = hcell_create () in
  let s = local () in
  (if h.h_id < Array.length s.hcells then
     match s.hcells.(h.h_id) with
     | Some c -> hcell_fold ~into:merged c
     | None -> ());
  locked pub_mutex (fun () ->
      if h.h_id < Array.length published.hcells then
        match published.hcells.(h.h_id) with
        | Some c -> hcell_fold ~into:merged c
        | None -> ());
  merged

let hcell_quantile c q =
  if c.hc_count = 0 then 0.0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let target =
      let r = int_of_float (Float.round (q *. float_of_int c.hc_count)) in
      if r < 1 then 1 else r
    in
    let acc = ref 0 and i = ref 0 and result = ref c.hc_max in
    (try
       while !i < n_buckets do
         acc := !acc + c.buckets.(!i);
         if !acc >= target then begin
           result := bucket_value !i;
           raise Exit
         end;
         incr i
       done
     with Exit -> ());
    (* exact bounds beat the bucket midpoint at the extremes *)
    if !result < c.hc_min then c.hc_min
    else if !result > c.hc_max then c.hc_max
    else !result
  end

type hist_summary = {
  hs_count : int;
  hs_min : float;
  hs_max : float;
  hs_mean : float;
  hs_p50 : float;
  hs_p95 : float;
  hs_p99 : float;
}

let hcell_summary c =
  if c.hc_count = 0 then
    {
      hs_count = 0; hs_min = 0.0; hs_max = 0.0; hs_mean = 0.0;
      hs_p50 = 0.0; hs_p95 = 0.0; hs_p99 = 0.0;
    }
  else
    {
      hs_count = c.hc_count;
      hs_min = c.hc_min;
      hs_max = c.hc_max;
      hs_mean = c.hc_sum /. float_of_int c.hc_count;
      hs_p50 = hcell_quantile c 0.50;
      hs_p95 = hcell_quantile c 0.95;
      hs_p99 = hcell_quantile c 0.99;
    }

let hist_summary h = hcell_summary (hcell_view h)
let hist_quantile h q = hcell_quantile (hcell_view h) q

(* ---------- exports: immutable sink snapshots with a deterministic,
   associative merge — the unit the campaign pool moves between
   domains ---------- *)

module Export = struct
  type t = {
    e_counters : (string * int) list; (* sorted by name, nonzero only *)
    e_gauges : (string * float) list; (* sorted by name *)
    e_hists : (string * hcell) list; (* sorted by name, nonempty only *)
    e_spans : span list; (* sorted by span_order *)
  }

  let empty = { e_counters = []; e_gauges = []; e_hists = []; e_spans = [] }

  let of_sink s =
    let cs =
      List.filter_map
        (fun c ->
          let v = read_count s c.c_id in
          if v = 0 then None else Some (c.c_name, v))
        (all_counters ())
    in
    let hs =
      List.filter_map
        (fun h ->
          if h.h_id < Array.length s.hcells then
            match s.hcells.(h.h_id) with
            | Some c when c.hc_count > 0 -> Some (h.h_name, hcell_copy c)
            | _ -> None
          else None)
        (all_hists ())
    in
    let by_name (a, _) (b, _) = String.compare a b in
    {
      e_counters = List.sort by_name cs;
      e_gauges =
        Hashtbl.fold (fun k r acc -> (k, !r) :: acc) s.sk_gauges []
        |> List.sort by_name;
      e_hists = List.sort by_name hs;
      e_spans = List.sort span_order (Array.to_list (sink_spans s));
    }

  let of_local () = of_sink (local ())
  let of_published () = locked pub_mutex (fun () -> of_sink published)

  (* merge two sorted-by-name assoc lists with [f] on collisions *)
  let rec union f xs ys =
    match (xs, ys) with
    | [], l | l, [] -> l
    | (kx, vx) :: xt, (ky, vy) :: yt ->
        let c = String.compare kx ky in
        if c < 0 then (kx, vx) :: union f xt ys
        else if c > 0 then (ky, vy) :: union f xs yt
        else (kx, f vx vy) :: union f xt yt

  let rec merge_spans xs ys =
    match (xs, ys) with
    | [], l | l, [] -> l
    | x :: xt, y :: yt ->
        if span_order x y <= 0 then x :: merge_spans xt ys
        else y :: merge_spans xs yt

  let merge a b =
    {
      e_counters = union ( + ) a.e_counters b.e_counters;
      e_gauges = union Float.max a.e_gauges b.e_gauges;
      e_hists =
        union
          (fun x y ->
            let m = hcell_copy x in
            hcell_fold ~into:m y;
            m)
          a.e_hists b.e_hists;
      e_spans = merge_spans a.e_spans b.e_spans;
    }

  let counters e = e.e_counters
  let gauges e = e.e_gauges
  let hists e = List.map (fun (n, c) -> (n, hcell_summary c)) e.e_hists
  let spans e = e.e_spans

  (* fold an export into a sink (registry ids resolved by name) *)
  let absorb_into s e =
    List.iter
      (fun (n, v) ->
        let c = counter n in
        let counts = counts_cell s c.c_id in
        counts.(c.c_id) <- counts.(c.c_id) + v)
      e.e_counters;
    List.iter
      (fun (n, v) ->
        match Hashtbl.find_opt s.sk_gauges n with
        | Some r -> r := Float.max !r v
        | None -> Hashtbl.replace s.sk_gauges n (ref v))
      e.e_gauges;
    List.iter
      (fun (n, src) ->
        let h = hist n in
        hcell_fold ~into:(hcell_of s h.h_id) src)
      e.e_hists;
    List.iter (fun sp -> push_ring s sp) e.e_spans

  let absorb e = locked pub_mutex (fun () -> absorb_into published e)
end

let publish () =
  let s = local () in
  let e = Export.of_sink s in
  sink_clear s;
  Export.absorb e

(* ---------- snapshot / reset ---------- *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  hists : (string * hist_summary) list;
}

let snapshot () =
  (* all registered names (zeros included, as before), own + published *)
  let merged = Export.merge (Export.of_local ()) (Export.of_published ()) in
  let by_name (a, _) (b, _) = String.compare a b in
  let cs =
    List.map
      (fun c ->
        ( c.c_name,
          match List.assoc_opt c.c_name merged.Export.e_counters with
          | Some v -> v
          | None -> 0 ))
      (all_counters ())
    |> List.sort by_name
  in
  let hs =
    List.map
      (fun h ->
        ( h.h_name,
          match List.assoc_opt h.h_name merged.Export.e_hists with
          | Some c -> hcell_summary c
          | None -> hcell_summary (hcell_create ()) ))
      (all_hists ())
    |> List.sort by_name
  in
  { counters = cs; gauges = merged.Export.e_gauges; hists = hs }

let reset () =
  sink_clear (local ());
  locked pub_mutex (fun () -> sink_clear published)

(* ---------- Chrome trace export ---------- *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let chrome_trace () =
  let sps = spans () in
  let t0 =
    Array.fold_left
      (fun acc sp -> if sp.sp_start_ns < acc then sp.sp_start_ns else acc)
      infinity sps
  in
  let t0 = if Float.is_finite t0 then t0 else 0.0 in
  (* one lane per domain: map distinct domain ids (sorted, so the
     assignment is deterministic) to compact tids starting at 1 *)
  let doms =
    Array.fold_left (fun acc sp -> sp.sp_dom :: acc) [] sps
    |> List.sort_uniq compare
  in
  let tid_of d =
    let rec idx i = function
      | [] -> 1
      | x :: t -> if x = d then i else idx (i + 1) t
    in
    idx 1 doms
  in
  let b = Buffer.create (4096 + (Array.length sps * 96)) in
  Buffer.add_string b "{\"traceEvents\":[";
  Buffer.add_string b
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"ecsd\",\"wall_start\":%.6f}}"
       !wall0);
  List.iter
    (fun d ->
      Buffer.add_string b
        (Printf.sprintf
           ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"domain %d\"}}"
           (tid_of d) d))
    doms;
  Array.iter
    (fun sp ->
      Buffer.add_string b ",{\"name\":\"";
      json_escape b sp.sp_name;
      Buffer.add_string b
        (Printf.sprintf
           "\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"depth\":%d,\"count\":%d}}"
           (tid_of sp.sp_dom)
           ((sp.sp_start_ns -. t0) /. 1e3)
           (sp.sp_dur_ns /. 1e3) sp.sp_depth sp.sp_count))
    sps;
  Buffer.add_string b "]}";
  Buffer.contents b

let write_chrome_trace ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_trace ()))
