(** Observability: tracing spans, metrics, and their export.

    The paper's PIL stage exists to *measure* the generated application
    (execution times, response latency, jitter, memory). This module
    gives the environment itself the same treatment: nestable timed
    spans recorded into a ring buffer, process-wide counters / gauges /
    log-scale latency histograms, and snapshot/export APIs consumed by
    {!Bench_json}, the [ecsd --trace/--metrics] flags and the bench
    harness.

    Everything is disabled by default and strictly zero-cost when
    disabled: each entry point checks {!enabled} once and the disabled
    path performs no allocation, no clock read and no hash lookup, so
    instrumented hot loops (the MIL engine's [Sim.step]) keep their
    golden-trace semantics and their speed.

    {b Multicore:} collection state is domain-local. Each domain records
    into a private sink with no synchronisation on the hot path; worker
    domains fold their sink into a process-wide aggregate with
    {!publish} (the campaign pool does this once per job), and all read
    APIs report the calling domain's sink merged with that aggregate.
    {!Export.merge} — the merge underneath — is associative and, on
    counters and histogram buckets, commutative, so campaign totals do
    not depend on which domain ran which job. *)

(** {2 Master switch} *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Turning collection off does not clear recorded data; {!reset} does. *)

val now_ns : unit -> float
(** Monotonic clock, nanoseconds (arbitrary origin). *)

val wall_anchor : unit -> float
(** [Unix.gettimeofday] captured when collection was last enabled —
    anchors the monotonic span timestamps to wall-clock time. *)

(** {2 Spans}

    Spans nest: [span_begin]/[span_end] maintain an explicit stack (no
    allocation per span) and completed spans land in a bounded ring
    buffer, oldest evicted first. *)

type span = {
  sp_name : string;
  sp_start_ns : float;  (** monotonic, see {!now_ns} *)
  sp_dur_ns : float;
  sp_depth : int;  (** nesting depth at entry, outermost = 0 *)
  sp_count : int;  (** per-span counter, bumped by {!bump} *)
  sp_dom : int;  (** id of the domain the span completed on *)
}

val span_begin : string -> unit
val span_end : unit -> unit

val span : string -> (unit -> 'a) -> 'a
(** [span name f] = begin; f (); end — exception-safe closure form for
    cold paths (the closure itself may allocate; use begin/end pairs in
    hot loops). *)

val bump : int -> unit
(** Add to the innermost open span's counter (e.g. events fired during
    this step). No-op when disabled or outside any span. *)

val spans : unit -> span array
(** Ring contents, oldest first, in span-completion order. *)

val set_ring_capacity : int -> unit
(** Default 8192 completed spans; clears the ring. *)

val chrome_trace : unit -> string
(** The ring as a Chrome [chrome://tracing] / Perfetto JSON document
    (complete "X" events, microsecond timestamps, one [tid] lane per
    domain with [thread_name] metadata). *)

val write_chrome_trace : path:string -> unit

val json_escape : Buffer.t -> string -> unit
(** Append [s] to [b] with JSON string escaping (shared by the trace
    exporters). *)

(** {2 Counters and gauges} *)

type counter

val counter : string -> counter
(** Find-or-create a process-wide named counter. Creation is the slow
    path; keep the handle and use {!add} in hot code. *)

val add : counter -> int -> unit
(** O(1), no allocation; no-op when disabled. *)

val counter_value : counter -> int

val incr_counter : ?by:int -> string -> unit
(** Lookup convenience for cold paths. *)

val set_gauge : string -> float -> unit

(** {2 Histograms}

    Log-scale (base-2 exponent with 16 sub-buckets, HDR-style): O(1)
    record, bounded memory, quantile relative error <= 1/32 + one
    sub-bucket width (~6 %). Values are whatever unit the call site
    uses; the convention in this codebase is seconds. *)

type hist

type hist_summary = {
  hs_count : int;
  hs_min : float;  (** exact *)
  hs_max : float;  (** exact *)
  hs_mean : float;  (** exact *)
  hs_p50 : float;
  hs_p95 : float;
  hs_p99 : float;
}

val hist : string -> hist
(** Find-or-create a process-wide named histogram. *)

val record : hist -> float -> unit
(** O(1), no allocation; no-op when disabled. *)

val record_named : string -> float -> unit
val hist_summary : hist -> hist_summary
val hist_quantile : hist -> float -> float
(** [hist_quantile h q], [0 <= q <= 1]; 0 when empty. *)

(** {2 Snapshot} *)

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;
  hists : (string * hist_summary) list;
}

val snapshot : unit -> snapshot
(** The calling domain's sink merged with the published aggregate; all
    registered counter/histogram names appear (zeros included), sorted. *)

val reset : unit -> unit
(** Zero the calling domain's sink and the published aggregate.
    Registered names survive (handles stay valid). Other domains' local
    sinks are untouched — workers clear theirs when they {!publish}. *)

(** {2 Cross-domain aggregation} *)

val publish : unit -> unit
(** Fold the calling domain's sink into the process-wide published
    aggregate and clear the local sink. Worker domains call this when a
    campaign job completes (and before exiting), so the spawning domain
    sees their counts. Takes one mutex — keep it off per-step paths. *)

(** Immutable sink snapshots with a deterministic merge: the unit of
    data the campaign pool moves between domains, exposed for tests and
    tooling. [merge] is associative; counter sums and histogram bucket
    sums are also commutative, so any merge tree over the same exports
    yields the same totals. Spans merge into a deterministic total
    order (start time, then duration/name/depth/count). Gauges merge
    with [Float.max]. *)
module Export : sig
  type t

  val empty : t
  val of_local : unit -> t
  (** Snapshot the calling domain's sink (published data excluded). *)

  val of_published : unit -> t
  val merge : t -> t -> t

  val counters : t -> (string * int) list
  (** Sorted by name; zero-valued counters omitted. *)

  val gauges : t -> (string * float) list
  val hists : t -> (string * hist_summary) list
  val spans : t -> span list

  val absorb : t -> unit
  (** Fold an export into the published aggregate. *)
end
