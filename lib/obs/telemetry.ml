(* Live-metrics export on top of the Obs registry: Prometheus-style text
   exposition and the JSONL heartbeat lines `ecsd serve` emits.

   Named [Telemetry] rather than [Metrics]: every library here is built
   with (wrapped false) and lib/control already owns the [Metrics] module
   (control-quality metrics). *)

let wall s =
  match Sys.getenv_opt "ECSD_WALL_ZERO" with
  | None | Some "" -> s
  | Some _ -> 0.0

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*; the registry uses
   dotted names, so map everything else to '_' *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let prometheus () =
  let snap = Obs.snapshot () in
  let b = Buffer.create 1024 in
  let metric ty name value_lines =
    let n = "ecsd_" ^ sanitize name in
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" n ty);
    List.iter
      (fun (suffix, labels, v) ->
        Buffer.add_string b
          (Printf.sprintf "%s%s%s %s\n" n suffix labels (Bench_json.float_str v)))
      value_lines
  in
  List.iter
    (fun (name, v) -> metric "counter" name [ ("", "", float_of_int v) ])
    snap.Obs.counters;
  List.iter (fun (name, v) -> metric "gauge" name [ ("", "", v) ]) snap.Obs.gauges;
  List.iter
    (fun (name, (hs : Obs.hist_summary)) ->
      metric "summary" name
        [
          ("", "{quantile=\"0.5\"}", hs.Obs.hs_p50);
          ("", "{quantile=\"0.95\"}", hs.Obs.hs_p95);
          ("", "{quantile=\"0.99\"}", hs.Obs.hs_p99);
          ("_sum", "", hs.Obs.hs_mean *. float_of_int hs.Obs.hs_count);
          ("_count", "", float_of_int hs.Obs.hs_count);
        ])
    snap.Obs.hists;
  Buffer.contents b

let write_prometheus ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (prometheus ()))

(* Heartbeat line for serve's stdout. All wall-derived fields go through
   {!wall} so ECSD_WALL_ZERO keeps the stream byte-comparable. *)
let heartbeat ~jobs_done ~inflight ~wall_s =
  let js =
    match
      List.assoc_opt "serve.job_s" (Obs.snapshot ()).Obs.hists
    with
    | Some hs -> hs
    | None ->
        {
          Obs.hs_count = 0;
          hs_min = 0.0;
          hs_max = 0.0;
          hs_mean = 0.0;
          hs_p50 = 0.0;
          hs_p95 = 0.0;
          hs_p99 = 0.0;
        }
  in
  let w = wall wall_s in
  Bench_json.Obj
    [
      ("heartbeat", Bench_json.Bool true);
      ("jobs_done", Bench_json.Int jobs_done);
      ("inflight", Bench_json.Int inflight);
      ("wall_s", Bench_json.Float w);
      ( "jobs_per_s",
        Bench_json.Float
          (if w > 0.0 then float_of_int jobs_done /. w else 0.0) );
      ("job_p50_s", Bench_json.Float (wall js.Obs.hs_p50));
      ("job_p95_s", Bench_json.Float (wall js.Obs.hs_p95));
      ("job_max_s", Bench_json.Float (wall js.Obs.hs_max));
    ]

let heartbeat_line ~jobs_done ~inflight ~wall_s =
  Bench_json.to_string (heartbeat ~jobs_done ~inflight ~wall_s)
