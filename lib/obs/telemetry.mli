(** Live-metrics export: Prometheus text exposition and `ecsd serve`
    heartbeat lines, both built from the {!Obs} registry snapshot.

    (Named [Telemetry] because lib/control, also [(wrapped false)],
    already owns the module name [Metrics].) *)

val wall : float -> float
(** Identity, or [0.0] when [ECSD_WALL_ZERO] is set — keeps wall-derived
    fields byte-comparable across runs. *)

val sanitize : string -> string
(** Dotted registry name to a Prometheus-legal name fragment. *)

val prometheus : unit -> string
(** The current snapshot as Prometheus text: counters, gauges, and
    histograms as summaries (q0.5/q0.95/q0.99, [_sum], [_count]), each
    prefixed [ecsd_]. *)

val write_prometheus : path:string -> unit

val heartbeat : jobs_done:int -> inflight:int -> wall_s:float -> Bench_json.t
(** One heartbeat record: job throughput plus the [serve.job_s] latency
    summary. Wall-derived fields respect [ECSD_WALL_ZERO]. *)

val heartbeat_line : jobs_done:int -> inflight:int -> wall_s:float -> string
(** {!heartbeat} as one compact JSON line (no trailing newline). *)
