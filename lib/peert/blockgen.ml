open C_ast

type mode = Hw | Pil

type gctx = {
  mode : mode;
  name : string;
  ins : expr list;
  outs : expr list;
  out_tys : cty list;
  out_dtypes : Dtype.t list;
  dt : float;
  state : string -> expr;
  ext_in : int -> expr;
  ext_out : int -> expr;
  pil_slot : int option;
}

type gen = {
  state_fields : (cty * string) list;
  init : stmt list;
  step : stmt list;
  update : stmt list;
  needs_time : bool;
}

type spec_alias = Block.spec

exception Unsupported of string

let sanitize name =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
      then c
      else '_')
    name

let nothing = { state_fields = []; init = []; step = []; update = []; needs_time = false }

let in0 g = List.nth g.ins 0
let out0 g = List.nth g.outs 0
let oty0 g = List.nth g.out_tys 0
let odt0 g = List.nth g.out_dtypes 0

(* Helper replicating Value.of_float for a quantised output dtype:
   round half away from zero, saturate at the type's range, NaN -> 0.
   The helpers themselves are emitted once per model by the target. *)
let cast_helper_of_dtype = function
  | Dtype.Bool -> Some "pe_cast_b"
  | Dtype.Int8 -> Some "pe_cast_i8"
  | Dtype.Uint8 -> Some "pe_cast_u8"
  | Dtype.Int16 -> Some "pe_cast_i16"
  | Dtype.Uint16 -> Some "pe_cast_u16"
  | Dtype.Int32 -> Some "pe_cast_i32"
  | Dtype.Uint32 -> Some "pe_cast_u32"
  | Dtype.Double | Dtype.Single | Dtype.Fix _ -> None

(* The helper definitions themselves (appended to every generated
   translation unit that may call them). Round half away from zero,
   saturate at the dtype's range, NaN maps to zero — C99 round() is
   exactly OCaml's Float.round, so an output routed through one of
   these agrees bit for bit with the simulated signal. *)
let cast_helpers =
  let mk cname ret lo hi =
    Func_def
      (func ~static:true
         ~comment:"quantise to the output dtype: round to nearest, saturate"
         ret cname
         [ (Double_t, "x") ]
         [
           Decl (Double_t, "r", Some (call "round" [ Var "x" ]));
           Decl (ret, "y", Some (Int_lit 0));
           If
             ( Bin ("==", Var "r", Var "r"),
               [
                 If
                   ( Bin (">=", Var "r", flt hi),
                     [ Assign (Var "y", Cast_to (ret, flt hi)) ],
                     [
                       If
                         ( Bin ("<=", Var "r", flt lo),
                           [ Assign (Var "y", Cast_to (ret, flt lo)) ],
                           [ Assign (Var "y", Cast_to (ret, Var "r")) ] );
                     ] );
               ],
               [] );
           Return (Some (Var "y"));
         ])
  in
  [
    mk "pe_cast_i8" I8 (-128.0) 127.0;
    mk "pe_cast_u8" U8 0.0 255.0;
    mk "pe_cast_i16" I16 (-32768.0) 32767.0;
    mk "pe_cast_u16" U16 0.0 65535.0;
    mk "pe_cast_i32" I32 (-2147483648.0) 2147483647.0;
    mk "pe_cast_u32" U32 0.0 4294967295.0;
    Func_def
      (func ~static:true ~comment:"boolean output: any non-zero input is true"
         U8 "pe_cast_b"
         [ (Double_t, "x") ]
         [
           Return
             (Some
                (Cast_to
                   ( U8,
                     Ternary (Bin ("!=", Var "x", flt 0.0), Int_lit 1, Int_lit 0)
                   )));
         ]);
  ]

(* Emit only the helpers a translation unit actually calls: the plant
   simulator is compiled host-side with -Werror, where an unused
   static function is fatal. *)
let rec calls_in_expr acc = function
  | Call (f, args) -> List.fold_left calls_in_expr (f :: acc) args
  | Un (_, e) | Cast_to (_, e) | Field (e, _) | Arrow (e, _) ->
      calls_in_expr acc e
  | Bin (_, a, b) | Index (a, b) -> calls_in_expr (calls_in_expr acc a) b
  | Ternary (a, b, c) ->
      calls_in_expr (calls_in_expr (calls_in_expr acc a) b) c
  | Int_lit _ | Hex_lit _ | Float_lit _ | Str_lit _ | Var _ -> acc

let rec calls_in_stmt acc = function
  | Expr e | Return (Some e) | Decl (_, _, Some e) -> calls_in_expr acc e
  | Assign (a, b) -> calls_in_expr (calls_in_expr acc a) b
  | If (c, t, e) ->
      List.fold_left calls_in_stmt
        (List.fold_left calls_in_stmt (calls_in_expr acc c) t)
        e
  | While (c, b) -> List.fold_left calls_in_stmt (calls_in_expr acc c) b
  | For (i, c, u, b) ->
      List.fold_left calls_in_stmt
        (calls_in_stmt (calls_in_expr (calls_in_stmt acc i) c) u)
        b
  | Block b -> List.fold_left calls_in_stmt acc b
  | Decl (_, _, None) | Return None | Comment _ | Raw _ -> acc

let used_cast_helpers stmts =
  let used = List.fold_left calls_in_stmt [] stmts in
  List.filter
    (function
      | Func_def f -> List.mem f.fname used
      | _ -> false)
    cast_helpers

let time_var = Var "model_time"

(* Clamp an expression between two optional finite bounds. *)
let clamp_stmts target lo hi =
  let s = ref [] in
  if Float.is_finite hi then
    s := If (Bin (">", target, flt hi), [ Assign (target, flt hi) ], []) :: !s;
  if Float.is_finite lo then
    s := If (Bin ("<", target, flt lo), [ Assign (target, flt lo) ], []) :: !s;
  List.rev !s

(* Integer variant: clamping an int32 accumulator with float literals
   would be an implicit double -> int32_t narrowing (MISRA). *)
let clamp_stmts_int target lo hi =
  [
    If (Bin (">", target, int_ hi), [ Assign (target, int_ hi) ], []);
    If (Bin ("<", target, int_ lo), [ Assign (target, int_ lo) ], []);
  ]

let pil_slot_exn g =
  match g.pil_slot with
  | Some s -> s
  | None -> failwith (g.name ^ ": peripheral block without a PIL slot")

let bean_of ps = Param.string ps "bean"

let custom : (string, gctx -> spec_alias -> gen) Hashtbl.t = Hashtbl.create 8
let register kind f = Hashtbl.replace custom kind f

let emit_builtin g spec =
  let ps = spec.Block.params in
  let pf = Param.float ps in
  match spec.Block.kind with
  | "Constant" ->
      { nothing with init = [ Assign (out0 g, flt (pf "value")) ] }
  | "Step" ->
      {
        nothing with
        needs_time = true;
        step =
          [
            Assign
              ( out0 g,
                Ternary
                  ( Bin (">=", time_var, flt (pf "t_step")),
                    flt (pf "after"), flt (pf "before") ) );
          ];
      }
  | "Ramp" ->
      {
        nothing with
        needs_time = true;
        step =
          [
            Assign
              ( out0 g,
                Ternary
                  ( Bin (">=", time_var, flt (pf "start")),
                    Bin ("*", flt (pf "slope"), Bin ("-", time_var, flt (pf "start"))),
                    flt 0.0 ) );
          ];
      }
  | "Sine" ->
      {
        nothing with
        needs_time = true;
        step =
          [
            Assign
              ( out0 g,
                Bin
                  ( "+",
                    flt (pf "bias"),
                    Bin
                      ( "*",
                        flt (pf "amp"),
                        call "sin"
                          [
                            Bin
                              ( "+",
                                Bin
                                  ( "*",
                                    flt (2.0 *. Float.pi *. pf "freq_hz"),
                                    time_var ),
                                flt (pf "phase") );
                          ] ) ) );
          ];
      }
  | "Pulse" ->
      {
        nothing with
        needs_time = true;
        step =
          [
            Decl
              ( Double_t, g.name ^ "_frac",
                Some (call "fmod" [ time_var; flt (pf "period") ]) );
            Assign
              ( out0 g,
                Ternary
                  ( Bin
                      ("<", Var (g.name ^ "_frac"),
                       flt (pf "duty" *. pf "period")),
                    flt (pf "amp"), flt 0.0 ) );
          ];
      }
  | "SetpointSchedule" ->
      let times = Param.floats ps "times" and values = Param.floats ps "values" in
      let n = Array.length times in
      {
        nothing with
        needs_time = true;
        state_fields = [];
        init = [];
        step =
          [ Assign (out0 g, flt 0.0) ]
          @ List.init n (fun i ->
                If
                  ( Bin (">=", time_var, flt times.(i)),
                    [ Assign (out0 g, flt values.(i)) ],
                    [] ));
      }
  | "Clock" -> { nothing with needs_time = true; step = [ Assign (out0 g, time_var) ] }
  | "UniformNoise" ->
      (* xorshift-based PRNG scaled into [lo, hi) *)
      let lo = pf "lo" and hi = pf "hi" in
      {
        nothing with
        state_fields = [ (U32, "seed") ];
        init = [ Assign (g.state "seed", Hex_lit (Param.int ps "seed" land 0xFFFFFFF)) ];
        step =
          [
            Assign
              ( g.state "seed",
                Bin ("^", g.state "seed", Bin ("<<", g.state "seed", Int_lit 13)) );
            Assign
              ( g.state "seed",
                Bin ("^", g.state "seed", Bin (">>", g.state "seed", Int_lit 17)) );
            Assign
              ( g.state "seed",
                Bin ("^", g.state "seed", Bin ("<<", g.state "seed", Int_lit 5)) );
            Assign
              ( out0 g,
                Bin
                  ( "+",
                    flt lo,
                    Bin
                      ( "*",
                        Bin
                          ( "/",
                            Cast_to (Double_t, g.state "seed"),
                            flt 4294967296.0 ),
                        flt (hi -. lo) ) ) );
          ];
      }
  | "Gain" -> { nothing with step = [ Assign (out0 g, Bin ("*", flt (pf "k"), in0 g)) ] }
  | "Sum" ->
      let signs = Param.string ps "signs" in
      let expr =
        List.fold_left
          (fun acc (i, c) ->
            let term = List.nth g.ins i in
            match acc with
            | None -> Some (if c = '+' then term else Un ("-", term))
            | Some e -> Some (Bin ((if c = '+' then "+" else "-"), e, term)))
          None
          (List.init (String.length signs) (fun i -> (i, signs.[i])))
      in
      { nothing with step = [ Assign (out0 g, Option.get expr) ] }
  | "Product" ->
      let n = Param.int ps "n" in
      let expr =
        List.fold_left
          (fun acc i ->
            match acc with
            | None -> Some (List.nth g.ins i)
            | Some e -> Some (Bin ("*", e, List.nth g.ins i)))
          None
          (List.init n Fun.id)
      in
      { nothing with step = [ Assign (out0 g, Option.get expr) ] }
  | "Divide" ->
      { nothing with step = [ Assign (out0 g, Bin ("/", in0 g, List.nth g.ins 1)) ] }
  | "Abs" ->
      {
        nothing with
        step = [ Assign (out0 g, Ternary (Bin ("<", in0 g, flt 0.0), Un ("-", in0 g), in0 g)) ];
      }
  | "Neg" -> { nothing with step = [ Assign (out0 g, Un ("-", in0 g)) ] }
  | "Sign" ->
      {
        nothing with
        step =
          [
            Assign
              ( out0 g,
                Ternary
                  ( Bin (">", in0 g, flt 0.0),
                    flt 1.0,
                    Ternary (Bin ("<", in0 g, flt 0.0), flt (-1.0), flt 0.0) ) );
          ];
      }
  | "Min" ->
      {
        nothing with
        step =
          [
            Assign
              ( out0 g,
                Ternary
                  (Bin ("<", in0 g, List.nth g.ins 1), in0 g, List.nth g.ins 1) );
          ];
      }
  | "Max" ->
      {
        nothing with
        step =
          [
            Assign
              ( out0 g,
                Ternary
                  (Bin (">", in0 g, List.nth g.ins 1), in0 g, List.nth g.ins 1) );
          ];
      }
  | "Cast" -> { nothing with step = [ Assign (out0 g, Cast_to (oty0 g, in0 g)) ] }
  | "Compare" ->
      let op =
        match Param.string ps "op" with
        | "lt" -> "<"
        | "le" -> "<="
        | "gt" -> ">"
        | "ge" -> ">="
        | "eq" -> "=="
        | _ -> "!="
      in
      { nothing with step = [ Assign (out0 g, Bin (op, in0 g, List.nth g.ins 1)) ] }
  | "Logic" ->
      let stmt =
        match Param.string ps "op" with
        | "not" -> Assign (out0 g, Un ("!", in0 g))
        | "and" -> Assign (out0 g, Bin ("&&", in0 g, List.nth g.ins 1))
        | "or" -> Assign (out0 g, Bin ("||", in0 g, List.nth g.ins 1))
        | _ ->
            Assign
              ( out0 g,
                Bin ("!=", Un ("!", in0 g), Un ("!", List.nth g.ins 1)) )
      in
      { nothing with step = [ stmt ] }
  | "MathFn" ->
      { nothing with step = [ Assign (out0 g, call (Param.string ps "fn") [ in0 g ]) ] }
  | "UnitDelay" ->
      (* MIL stores the next state through Value.cast (round + saturate
         for integer dtypes); mirror that rather than a raw C cast. *)
      let store e =
        match cast_helper_of_dtype (odt0 g) with
        | Some h -> call h [ e ]
        | None -> Cast_to (oty0 g, e)
      in
      let init_val =
        match cast_helper_of_dtype (odt0 g) with
        | Some h -> call h [ flt (pf "init") ]
        | None -> flt (pf "init")
      in
      {
        nothing with
        state_fields = [ (oty0 g, "x") ];
        init = [ Assign (g.state "x", init_val) ];
        step = [ Assign (out0 g, g.state "x") ];
        update = [ Assign (g.state "x", store (in0 g)) ];
      }
  | "DelayN" ->
      let n = Param.int ps "n" in
      if n = 0 then { nothing with step = [ Assign (out0 g, in0 g) ] }
      else
        let store e =
          match cast_helper_of_dtype (odt0 g) with
          | Some h -> call h [ e ]
          | None -> Cast_to (oty0 g, e)
        in
        let zero_elt =
          match cast_helper_of_dtype (odt0 g) with
          | Some _ -> Int_lit 0
          | None -> flt 0.0
        in
        {
          nothing with
          state_fields = [ (Arr (oty0 g, n), "buf"); (U16, "idx") ];
          init =
            [
              Assign (g.state "idx", Int_lit 0);
              For
                ( Decl (I32, "i", Some (Int_lit 0)),
                  Bin ("<", Var "i", Int_lit n),
                  Expr (Un ("++", Var "i")),
                  [ Assign (Index (g.state "buf", Var "i"), zero_elt) ] );
            ];
          step = [ Assign (out0 g, Index (g.state "buf", g.state "idx")) ];
          update =
            [
              Assign (Index (g.state "buf", g.state "idx"), store (in0 g));
              Assign
                ( g.state "idx",
                  Cast_to
                    (U16, Bin ("%", Bin ("+", g.state "idx", Int_lit 1), Int_lit n)) );
            ];
        }
  | "ZOH" -> { nothing with step = [ Assign (out0 g, in0 g) ] }
  | "DiscreteIntegrator" ->
      let lo = pf "lo" and hi = pf "hi" in
      {
        nothing with
        state_fields = [ (Double_t, "y") ];
        init = [ Assign (g.state "y", flt (pf "init")) ];
        step = [ Assign (out0 g, g.state "y") ];
        update =
          Assign
            ( g.state "y",
              Bin
                ( "+",
                  g.state "y",
                  Bin ("*", flt (pf "k" *. g.dt), in0 g) ) )
          :: clamp_stmts (g.state "y") lo hi;
      }
  | "DiscreteDerivative" ->
      {
        nothing with
        state_fields = [ (Double_t, "prev") ];
        init = [ Assign (g.state "prev", flt 0.0) ];
        step =
          [
            (* (k * (u - u_prev)) / dt, associated exactly as the
               simulation computes it so traces match bit for bit *)
            Assign
              ( out0 g,
                Bin
                  ( "/",
                    Bin ("*", flt (pf "k"), Bin ("-", in0 g, g.state "prev")),
                    flt g.dt ) );
          ];
        update = [ Assign (g.state "prev", in0 g) ];
      }
  | "DiscreteTransferFcn" ->
      let tf =
        Ztransfer.create ~num:(Param.floats ps "num") ~den:(Param.floats ps "den")
      in
      let b = Ztransfer.num tf and a = Ztransfer.den tf in
      let n = Ztransfer.order tf in
      if n = 0 then
        { nothing with step = [ Assign (out0 g, Bin ("*", flt b.(0), in0 g)) ] }
      else
        {
          nothing with
          state_fields = [ (Arr (Double_t, n), "w") ];
          init =
            [
              For
                ( Decl (I32, "i", Some (Int_lit 0)),
                  Bin ("<", Var "i", Int_lit n),
                  Expr (Un ("++", Var "i")),
                  [ Assign (Index (g.state "w", Var "i"), flt 0.0) ] );
            ];
          step =
            (* direct form II transposed sweep *)
            [
              Decl
                ( Double_t, g.name ^ "_y",
                  Some
                    (Bin ("+", Bin ("*", flt b.(0), in0 g),
                          Index (g.state "w", Int_lit 0))) );
            ]
            @ List.init n (fun i ->
                  let next =
                    if i + 1 < n then Index (g.state "w", Int_lit (i + 1))
                    else flt 0.0
                  in
                  Assign
                    ( Index (g.state "w", Int_lit i),
                      Bin
                        ( "-",
                          Bin ("+", next, Bin ("*", flt b.(i + 1), in0 g)),
                          Bin ("*", flt a.(i + 1), Var (g.name ^ "_y")) ) ))
            @ [ Assign (out0 g, Var (g.name ^ "_y")) ];
        }
  | "Pid" ->
      let kp = pf "kp" and ki = pf "ki" and kd = pf "kd" and nf = pf "n" in
      let u_min = pf "u_min" and u_max = pf "u_max" in
      let ts = pf "ts" in
      let e = Var (g.name ^ "_e") and d = Var (g.name ^ "_d") in
      let u = Var (g.name ^ "_u") in
      let d_expr =
        if kd = 0.0 then flt 0.0
        else if nf = 0.0 then
          Bin ("/", Bin ("*", flt kd, Bin ("-", e, g.state "e_prev")), flt ts)
        else
          Bin
            ( "/",
              Bin
                ( "+",
                  g.state "d_prev",
                  Bin ("*", flt (kd *. nf), Bin ("-", e, g.state "e_prev")) ),
              flt (1.0 +. (nf *. ts)) )
      in
      let anti_windup_guard =
        Bin
          ( "||",
            Bin ("&&", Bin (">", u, flt u_max), Bin (">", e, flt 0.0)),
            Bin ("&&", Bin ("<", u, flt u_min), Bin ("<", e, flt 0.0)) )
      in
      {
        nothing with
        state_fields =
          [ (Double_t, "integ"); (Double_t, "e_prev"); (Double_t, "d_prev") ];
        init =
          [
            Assign (g.state "integ", flt 0.0);
            Assign (g.state "e_prev", flt 0.0);
            Assign (g.state "d_prev", flt 0.0);
          ];
        step =
          [
            Decl (Double_t, g.name ^ "_e", Some (Bin ("-", in0 g, List.nth g.ins 1)));
            Decl (Double_t, g.name ^ "_d", Some d_expr);
            Decl
              ( Double_t, g.name ^ "_u",
                Some (Bin ("+", Bin ("+", Bin ("*", flt kp, e), g.state "integ"), d)) );
            If
              ( Un ("!", Ternary (anti_windup_guard, Int_lit 1, Int_lit 0)),
                [
                  Assign
                    ( g.state "integ",
                      Bin ("+", g.state "integ", Bin ("*", flt (ki *. ts), e)) );
                ],
                [] );
            Assign (g.state "e_prev", e);
            Assign (g.state "d_prev", d);
          ]
          @ clamp_stmts u u_min u_max
          @ [ Assign (out0 g, u) ];
      }
  | "FixPid" ->
      let fmt =
        match Param.dtype ps "fmt" with
        | Dtype.Fix f -> f
        | _ -> failwith "FixPid: fmt param"
      in
      let gains =
        Pid.gains ~kp:(pf "kp") ~ki:(pf "ki") ~kd:(pf "kd") ~n:(pf "n")
          ~u_min:(pf "u_min") ~u_max:(pf "u_max") ()
      in
      let fx =
        Pid.Fixpoint.create ~ts:(pf "ts") ~fmt ~in_scale:(pf "in_scale")
          ~out_scale:(pf "out_scale") gains
      in
      let c = Pid.Fixpoint.raw_coefficients fx in
      let in_scale = pf "in_scale" and out_scale = pf "out_scale" in
      let sig_one = float_of_int (1 lsl c.Pid.Fixpoint.sig_frac_bits) in
      let coef_one = float_of_int (1 lsl c.Pid.Fixpoint.coef_frac_bits) in
      let e = Var (g.name ^ "_e") in
      let acc = Var (g.name ^ "_acc") in
      (* Saturating helpers are emitted once per model by the target as
         pe_sat16/pe_sat32; here we just call them. *)
      {
        nothing with
        state_fields = [ (I32, "integ"); (I16, "e_prev"); (I32, "d_prev") ];
        init =
          [
            Assign (g.state "integ", Int_lit 0);
            Assign (g.state "e_prev", Int_lit 0);
            Assign (g.state "d_prev", Int_lit 0);
          ];
        step =
          [
            Comment
              (Printf.sprintf "Q%d signals, %d.%d coefficients; scales in=%g out=%g"
                 c.Pid.Fixpoint.sig_frac_bits
                 (32 - c.Pid.Fixpoint.coef_frac_bits)
                 c.Pid.Fixpoint.coef_frac_bits in_scale out_scale);
            Decl
              ( I16, g.name ^ "_e",
                Some
                  (call "pe_sat16"
                     [
                       Cast_to
                         ( I32,
                           call "lround"
                             [
                               Bin
                                 ( "*",
                                   Bin
                                     ( "/",
                                       Bin ("-", in0 g, List.nth g.ins 1),
                                       flt in_scale ),
                                   flt sig_one );
                             ] );
                     ]) );
            (* p term in coefficient format: kp * e >> sig_frac *)
            Decl
              ( I32, g.name ^ "_acc",
                Some
                  (call "pe_mul_shift"
                     [
                       Int_lit c.Pid.Fixpoint.kp_raw;
                       Cast_to (I32, e);
                       Int_lit c.Pid.Fixpoint.sig_frac_bits;
                     ]) );
            Assign (acc, call "pe_sat_add32" [ acc; g.state "integ" ]);
          ]
          @ (if c.Pid.Fixpoint.kd_c1_raw <> 0 then
               [
                 Decl
                   ( I32, g.name ^ "_de",
                     Some
                       (Bin
                          ( "-",
                            Bin ("<<", Cast_to (I32, e),
                                 Int_lit
                                   (c.Pid.Fixpoint.coef_frac_bits
                                    - c.Pid.Fixpoint.sig_frac_bits)),
                            Bin ("<<", Cast_to (I32, g.state "e_prev"),
                                 Int_lit
                                   (c.Pid.Fixpoint.coef_frac_bits
                                    - c.Pid.Fixpoint.sig_frac_bits)) )) );
                 Decl
                   ( I32, g.name ^ "_d",
                     Some
                       (call "pe_sat_add32"
                          [
                            call "pe_mul_shift"
                              [
                                Int_lit c.Pid.Fixpoint.kd_c1_raw;
                                Var (g.name ^ "_de");
                                Int_lit c.Pid.Fixpoint.coef_frac_bits;
                              ];
                            call "pe_mul_shift"
                              [
                                Int_lit c.Pid.Fixpoint.d_decay_raw;
                                g.state "d_prev";
                                Int_lit c.Pid.Fixpoint.coef_frac_bits;
                              ];
                          ]) );
                 Assign (acc, call "pe_sat_add32" [ acc; Var (g.name ^ "_d") ]);
                 Assign (g.state "d_prev", Var (g.name ^ "_d"));
               ]
             else [])
          @ [
              If
                ( Un
                    ( "!",
                      Ternary
                        ( Bin
                            ( "||",
                              Bin
                                ( "&&",
                                  Bin (">", acc, Int_lit c.Pid.Fixpoint.u_max_raw),
                                  Bin (">", e, Int_lit 0) ),
                              Bin
                                ( "&&",
                                  Bin ("<", acc, Int_lit c.Pid.Fixpoint.u_min_raw),
                                  Bin ("<", e, Int_lit 0) ) ),
                          Int_lit 1, Int_lit 0 ) ),
                  [
                    Assign
                      ( g.state "integ",
                        call "pe_sat_add32"
                          [
                            g.state "integ";
                            call "pe_mul_shift"
                              [
                                Int_lit c.Pid.Fixpoint.ki_ts_raw;
                                Cast_to (I32, e);
                                Int_lit c.Pid.Fixpoint.sig_frac_bits;
                              ];
                          ] );
                  ],
                  [] );
              Assign (g.state "e_prev", e);
            ]
          @ clamp_stmts_int acc c.Pid.Fixpoint.u_min_raw
              c.Pid.Fixpoint.u_max_raw
          @ [
              Assign
                ( out0 g,
                  Bin
                    ( "*",
                      Bin ("/", Cast_to (Double_t, acc), flt coef_one),
                      flt out_scale ) );
            ];
      }
  | "RateLimiter" ->
      let rising = pf "rising" and falling = pf "falling" in
      {
        nothing with
        state_fields = [ (Double_t, "prev"); (U8, "started") ];
        init =
          [ Assign (g.state "prev", flt 0.0); Assign (g.state "started", Int_lit 0) ];
        step =
          [
            Decl (Double_t, g.name ^ "_dy", Some (Bin ("-", in0 g, g.state "prev")));
            If
              ( Bin ("==", g.state "started", Int_lit 0),
                [
                  Assign (g.state "prev", in0 g);
                  Assign (g.state "started", Int_lit 1);
                ],
                [
                  If
                    ( Bin (">", Var (g.name ^ "_dy"), flt (rising *. g.dt)),
                      [ Assign (Var (g.name ^ "_dy"), flt (rising *. g.dt)) ],
                      [] );
                  If
                    ( Bin ("<", Var (g.name ^ "_dy"), flt (-.falling *. g.dt)),
                      [ Assign (Var (g.name ^ "_dy"), flt (-.falling *. g.dt)) ],
                      [] );
                  Assign
                    (g.state "prev", Bin ("+", g.state "prev", Var (g.name ^ "_dy")));
                ] );
            Assign (out0 g, g.state "prev");
          ];
      }
  | "MovingAverage" ->
      let n = Param.int ps "n" in
      {
        nothing with
        state_fields = [ (Arr (Double_t, n), "buf"); (U16, "idx"); (U16, "filled") ];
        init =
          [
            Assign (g.state "idx", Int_lit 0);
            Assign (g.state "filled", Int_lit 0);
            For
              ( Decl (I32, "i", Some (Int_lit 0)),
                Bin ("<", Var "i", Int_lit n),
                Expr (Un ("++", Var "i")),
                [ Assign (Index (g.state "buf", Var "i"), flt 0.0) ] );
          ];
        step =
          [
            Assign (Index (g.state "buf", g.state "idx"), in0 g);
            Assign
              ( g.state "idx",
                Cast_to
                  (U16, Bin ("%", Bin ("+", g.state "idx", Int_lit 1), Int_lit n)) );
            If
              ( Bin ("<", g.state "filled", Int_lit n),
                [ Assign (g.state "filled", Bin ("+", g.state "filled", Int_lit 1)) ],
                [] );
            Decl (Double_t, g.name ^ "_s", Some (flt 0.0));
            For
              ( Decl (I32, "i", Some (Int_lit 0)),
                Bin ("<", Var "i", Int_lit n),
                Expr (Un ("++", Var "i")),
                [
                  Assign
                    ( Var (g.name ^ "_s"),
                      Bin ("+", Var (g.name ^ "_s"), Index (g.state "buf", Var "i")) );
                ] );
            Assign
              ( out0 g,
                Bin ("/", Var (g.name ^ "_s"), Cast_to (Double_t, g.state "filled")) );
          ];
      }
  | "EncoderSpeed" ->
      let cpr = Param.int ps "counts_per_rev" in
      let k = 2.0 *. Float.pi /. float_of_int cpr in
      {
        nothing with
        state_fields = [ (I32, "prev") ];
        init = [ Assign (g.state "prev", Int_lit 0) ];
        step =
          [
            (* wrap-aware 16-bit difference works for both absolute and
               wrapped position registers *)
            Decl
              ( I16, g.name ^ "_dc",
                Some (Cast_to (I16, Bin ("-", in0 g, g.state "prev"))) );
            (* ((double)dc * k) / dt, associated as the simulation does *)
            Assign
              ( out0 g,
                Bin
                  ( "/",
                    Bin
                      ("*", Cast_to (Double_t, Var (g.name ^ "_dc")), flt k),
                    flt g.dt ) );
            Assign (g.state "prev", Cast_to (I32, in0 g));
          ];
      }
  | "Saturation" ->
      {
        nothing with
        step =
          (Assign (out0 g, in0 g) :: clamp_stmts (out0 g) (pf "lo") (pf "hi"));
      }
  | "Quantizer" ->
      let q = pf "interval" in
      {
        nothing with
        step =
          [
            Assign
              ( out0 g,
                Bin ("*", flt q, call "round" [ Bin ("/", in0 g, flt q) ]) );
          ];
      }
  | "DeadZone" ->
      let lo = pf "lo" and hi = pf "hi" in
      {
        nothing with
        step =
          [
            Assign (out0 g, flt 0.0);
            If
              ( Bin (">", in0 g, flt hi),
                [ Assign (out0 g, Bin ("-", in0 g, flt hi)) ],
                [
                  If
                    ( Bin ("<", in0 g, flt lo),
                      [ Assign (out0 g, Bin ("-", in0 g, flt lo)) ],
                      [] );
                ] );
          ];
      }
  | "Relay" ->
      {
        nothing with
        state_fields = [ (U8, "on") ];
        init = [ Assign (g.state "on", Int_lit 0) ];
        step =
          [
            If
              ( Bin (">=", in0 g, flt (pf "on_point")),
                [ Assign (g.state "on", Int_lit 1) ],
                [
                  If
                    ( Bin ("<=", in0 g, flt (pf "off_point")),
                      [ Assign (g.state "on", Int_lit 0) ],
                      [] );
                ] );
            Assign
              ( out0 g,
                Ternary (g.state "on", flt (pf "on_value"), flt (pf "off_value")) );
          ];
      }
  | "Switch" ->
      {
        nothing with
        step =
          [
            Assign
              ( out0 g,
                Ternary
                  ( Bin (">=", List.nth g.ins 1, flt (pf "threshold")),
                    in0 g, List.nth g.ins 2 ) );
          ];
      }
  | "CoulombFriction" ->
      let level = pf "level" in
      {
        nothing with
        step =
          [
            Assign
              ( out0 g,
                Bin
                  ( "+",
                    in0 g,
                    Ternary
                      ( Bin (">", in0 g, flt 0.0),
                        flt level,
                        Ternary (Bin ("<", in0 g, flt 0.0), flt (-.level), flt 0.0) ) ) );
          ];
      }
  | "Lookup1D" ->
      let xs = Param.floats ps "xs" and ys = Param.floats ps "ys" in
      let n = Array.length xs in
      let xs_tab = g.name ^ "_xs" and ys_tab = g.name ^ "_ys" in
      {
        nothing with
        state_fields = [];
        init = [];
        step =
          [
            Comment (Printf.sprintf "piecewise-linear lookup, %d breakpoints" n);
            Raw
              (Printf.sprintf
                 "{ static const double %s[%d] = {%s};\n\
                 \  static const double %s[%d] = {%s};\n\
                 \  double x = %s;\n\
                 \  if (x <= %s[0]) { %s = %s[0]; }\n\
                 \  else if (x >= %s[%d]) { %s = %s[%d]; }\n\
                 \  else { int lo = 0, hi = %d;\n\
                 \    while (hi - lo > 1) { int mid = (lo + hi) / 2;\n\
                 \      if (%s[mid] <= x) lo = mid; else hi = mid; }\n\
                 \    %s = %s[lo] + (%s[hi] - %s[lo]) * (x - %s[lo]) / (%s[hi] - %s[lo]); } }"
                 xs_tab n
                 (String.concat ", "
                    (Array.to_list (Array.map (Printf.sprintf "%.17g") xs)))
                 ys_tab n
                 (String.concat ", "
                    (Array.to_list (Array.map (Printf.sprintf "%.17g") ys)))
                 (C_print.expr_to_string (in0 g))
                 xs_tab
                 (C_print.expr_to_string (out0 g))
                 ys_tab xs_tab (n - 1)
                 (C_print.expr_to_string (out0 g))
                 ys_tab (n - 1) (n - 1) xs_tab
                 (C_print.expr_to_string (out0 g))
                 ys_tab ys_tab ys_tab xs_tab xs_tab xs_tab);
          ];
      }
  | "Inport" ->
      let idx = Param.int ps "index" in
      { nothing with step = [ Assign (out0 g, g.ext_in idx) ] }
  | "Outport" ->
      let idx = Param.int ps "index" in
      {
        nothing with
        step = [ Assign (g.ext_out idx, in0 g); Assign (out0 g, in0 g) ];
      }
  | "Terminator" -> nothing
  | "Merge2" ->
      (* generated code keeps the latest writer's value; approximated by
         preferring input 0 when it changed *)
      {
        nothing with
        state_fields = [ (Double_t, "p0"); (Double_t, "p1"); (Double_t, "held") ];
        init =
          [
            Assign (g.state "p0", flt 0.0);
            Assign (g.state "p1", flt 0.0);
            Assign (g.state "held", flt 0.0);
          ];
        step =
          [
            If
              ( Bin ("!=", in0 g, g.state "p0"),
                [ Assign (g.state "held", in0 g) ],
                [
                  If
                    ( Bin ("!=", List.nth g.ins 1, g.state "p1"),
                      [ Assign (g.state "held", List.nth g.ins 1) ],
                      [] );
                ] );
            Assign (g.state "p0", in0 g);
            Assign (g.state "p1", List.nth g.ins 1);
            Assign (out0 g, g.state "held");
          ];
      }
  | "PE_TimerInt" | "PE_Serial" -> nothing
  | "PE_Adc" -> (
      let bean = bean_of ps in
      match g.mode with
      | Hw ->
          {
            nothing with
            step =
              [
                Decl (U16, g.name ^ "_code", None);
                Expr (call (bean ^ "_Measure") [ Int_lit 1 ]);
                Expr (call (bean ^ "_GetValue") [ Un ("&", Var (g.name ^ "_code")) ]);
                Assign (out0 g, Var (g.name ^ "_code"));
              ];
          }
      | Pil ->
          {
            nothing with
            step =
              [
                Comment "PIL: peripheral read redirected to the comm buffer";
                Assign (out0 g, Index (Var "pil_sensor_buf", Int_lit (pil_slot_exn g)));
              ];
          })
  | "PE_Pwm" -> (
      let bean = bean_of ps in
      let period_counts = Param.int ps "period_counts" in
      (* SetRatio16 semantics including the integer duty counter: the
         realised duty is quantised by the PWM period register, exactly
         as the simulation bean models it *)
      let r = Var (g.name ^ "_r") and dc = Var (g.name ^ "_dc") in
      let echo write_stmts =
        [ Decl (I32, g.name ^ "_r", Some (Cast_to (I32, in0 g))) ]
        @ clamp_stmts_int r 0 65535
        @ write_stmts
        @ [
            Decl
              ( I32, g.name ^ "_dc",
                Some
                  (Bin
                     ( "/",
                       Bin ("*", r, Int_lit period_counts),
                       Int_lit 65535 )) );
            Assign
              ( out0 g,
                Bin
                  ( "/",
                    Cast_to (Double_t, dc),
                    flt (float_of_int period_counts) ) );
          ]
      in
      match g.mode with
      | Hw ->
          {
            nothing with
            step = echo [ Expr (call (bean ^ "_SetRatio16") [ Cast_to (U16, r) ]) ];
          }
      | Pil ->
          {
            nothing with
            step =
              echo
                [
                  Comment "PIL: peripheral write redirected to the comm buffer";
                  Assign
                    ( Index (Var "pil_actuator_buf", Int_lit (pil_slot_exn g)),
                      Cast_to (U16, r) );
                ];
          })
  | "PE_FreeCntr" -> (
      let bean = bean_of ps in
      match g.mode with
      | Hw ->
          { nothing with
            step = [ Assign (out0 g, call (bean ^ "_GetCounterValue") []) ] }
      | Pil ->
          (* time stamps stay local in PIL: the counter still runs *)
          { nothing with
            step = [ Assign (out0 g, call (bean ^ "_GetCounterValue") []) ] })
  | "PE_Dac" -> (
      let bean = bean_of ps in
      let vref = pf "vref" and max_code = Param.int ps "max_code" in
      (* clamp the code into the converter's range before writing, as
         the simulation bean does *)
      let r = Var (g.name ^ "_r") in
      let echo write_stmts =
        [ Decl (I32, g.name ^ "_r", Some (Cast_to (I32, in0 g))) ]
        @ clamp_stmts_int r 0 max_code
        @ write_stmts
        @ [
            Assign
              ( out0 g,
                Bin
                  ( "*",
                    Bin
                      ( "/",
                        Cast_to (Double_t, r),
                        flt (float_of_int max_code) ),
                    flt vref ) );
          ]
      in
      match g.mode with
      | Hw ->
          {
            nothing with
            step = echo [ Expr (call (bean ^ "_SetValue") [ Cast_to (U16, r) ]) ];
          }
      | Pil ->
          {
            nothing with
            step =
              echo
                [
                  Assign
                    ( Index (Var "pil_actuator_buf", Int_lit (pil_slot_exn g)),
                      Cast_to (U16, r) );
                ];
          })
  | "PE_QuadDec" -> (
      let bean = bean_of ps in
      match g.mode with
      | Hw ->
          {
            nothing with
            step =
              [ Assign (out0 g, Cast_to (I32, call (bean ^ "_GetPosition") [])) ];
          }
      | Pil ->
          {
            nothing with
            step =
              [
                Assign
                  ( out0 g,
                    Cast_to
                      (I32, Index (Var "pil_sensor_buf", Int_lit (pil_slot_exn g))) );
              ];
          })
  | "PE_BitIO_Out" -> (
      let bean = bean_of ps in
      match g.mode with
      | Hw ->
          {
            nothing with
            step =
              [
                Expr (call (bean ^ "_PutVal") [ in0 g ]);
                Assign (out0 g, in0 g);
              ];
          }
      | Pil ->
          {
            nothing with
            step =
              [
                Assign
                  ( Index (Var "pil_actuator_buf", Int_lit (pil_slot_exn g)),
                    Cast_to (U16, in0 g) );
                Assign (out0 g, in0 g);
              ];
          })
  | "PE_BitIO_In" -> (
      let bean = bean_of ps in
      match g.mode with
      | Hw ->
          { nothing with step = [ Assign (out0 g, call (bean ^ "_GetVal") []) ] }
      | Pil ->
          {
            nothing with
            step =
              [
                Assign
                  ( out0 g,
                    Cast_to
                      (U8, Index (Var "pil_sensor_buf", Int_lit (pil_slot_exn g))) );
              ];
          })
  (* ---- AUTOSAR block-set variant (section 8): same behaviour, MCAL API ---- *)
  | "AR_TimerInt" -> nothing
  | "AR_Adc" -> (
      let bean = bean_of ps in
      match g.mode with
      | Hw ->
          {
            nothing with
            step =
              [
                Decl (Named "Adc_ValueGroupType", g.name ^ "_code", None);
                Expr (call "Adc_StartGroupConversion" [ Var ("AdcGroup_" ^ bean) ]);
                Expr
                  (call "Adc_ReadGroup"
                     [ Var ("AdcGroup_" ^ bean); Un ("&", Var (g.name ^ "_code")) ]);
                Assign (out0 g, Var (g.name ^ "_code"));
              ];
          }
      | Pil ->
          {
            nothing with
            step =
              [
                Comment "PIL: peripheral read redirected to the comm buffer";
                Assign (out0 g, Index (Var "pil_sensor_buf", Int_lit (pil_slot_exn g)));
              ];
          })
  | "AR_Pwm" -> (
      let bean = bean_of ps in
      match g.mode with
      | Hw ->
          {
            nothing with
            step =
              [
                Comment "rescale ratio16 into the AUTOSAR 0x0000..0x8000 duty domain";
                Expr
                  (call "Pwm_SetDutyCycle"
                     [
                       Var ("PwmChannel_" ^ bean);
                       Cast_to
                         (U16,
                          Bin (">>",
                               Bin ("*", Cast_to (U32, in0 g), Hex_lit 0x8000),
                               Int_lit 16));
                     ]);
                Assign (out0 g, Bin ("/", Cast_to (Double_t, in0 g), flt 65535.0));
              ];
          }
      | Pil ->
          {
            nothing with
            step =
              [
                Assign
                  ( Index (Var "pil_actuator_buf", Int_lit (pil_slot_exn g)),
                    Cast_to (U16, in0 g) );
                Assign (out0 g, Bin ("/", Cast_to (Double_t, in0 g), flt 65535.0));
              ];
          })
  | "AR_Dio_Out" -> (
      let bean = bean_of ps in
      match g.mode with
      | Hw ->
          {
            nothing with
            step =
              [
                Expr
                  (call "Dio_WriteChannel"
                     [
                       Var ("DioChannel_" ^ bean);
                       Ternary (in0 g, Var "STD_HIGH", Var "STD_LOW");
                     ]);
                Assign (out0 g, in0 g);
              ];
          }
      | Pil ->
          {
            nothing with
            step =
              [
                Assign
                  ( Index (Var "pil_actuator_buf", Int_lit (pil_slot_exn g)),
                    Cast_to (U16, in0 g) );
                Assign (out0 g, in0 g);
              ];
          })
  | "AR_Dio_In" -> (
      let bean = bean_of ps in
      match g.mode with
      | Hw ->
          {
            nothing with
            step =
              [
                Assign
                  ( out0 g,
                    Bin ("==", call "Dio_ReadChannel" [ Var ("DioChannel_" ^ bean) ],
                         Var "STD_HIGH") );
              ];
          }
      | Pil ->
          {
            nothing with
            step =
              [
                Assign
                  ( out0 g,
                    Cast_to (U8, Index (Var "pil_sensor_buf", Int_lit (pil_slot_exn g))) );
              ];
          })
  | "AR_Icu" -> (
      let bean = bean_of ps in
      match g.mode with
      | Hw ->
          {
            nothing with
            step =
              [
                Assign
                  ( out0 g,
                    Cast_to
                      (I32, call "Icu_GetEdgeNumbers" [ Var ("IcuChannel_" ^ bean) ]) );
              ];
          }
      | Pil ->
          {
            nothing with
            step =
              [
                Assign
                  ( out0 g,
                    Cast_to
                      (I32, Index (Var "pil_sensor_buf", Int_lit (pil_slot_exn g))) );
              ];
          })
  | kind ->
      raise
        (Unsupported
           (Printf.sprintf
              "block kind %s has no embedded realisation (plant-side block?)" kind))

(* MIL quantises every integer/Bool-typed block output through
   Value.of_float (round half away from zero, saturate); a plain C
   assignment of a double expression would truncate and wrap instead.
   Route non-trivial right-hand sides through the matching pe_cast_*
   helper so the generated step agrees with the simulation bit for
   bit. Pure copies (already-typed fields) and integer literals are
   exact and stay untouched; a top-level cast to the output type is
   replaced rather than wrapped, as casting first would truncate
   before the helper can round. *)
let rec is_copy_expr = function
  | Var _ -> true
  | Field (e, _) | Arrow (e, _) -> is_copy_expr e
  | Index (e, _) -> is_copy_expr e
  | _ -> false

let quantized_rhs dt rhs =
  match cast_helper_of_dtype dt with
  | None -> rhs
  | Some h -> (
      match rhs with
      | Cast_to (ty, e) when ty = cty_of_dtype dt -> call h [ e ]
      | Int_lit _ | Hex_lit _ -> rhs
      | e when is_copy_expr e -> e
      | e -> call h [ e ])

let quantize_outputs g gen =
  let out_dtype_of lv =
    let rec find outs dts =
      match (outs, dts) with
      | o :: _, dt :: _ when o = lv -> Some dt
      | _ :: os, _ :: ds -> find os ds
      | _ -> None
    in
    find g.outs g.out_dtypes
  in
  let rec rw_stmt = function
    | Assign (lv, rhs) -> (
        match out_dtype_of lv with
        | Some dt -> Assign (lv, quantized_rhs dt rhs)
        | None -> Assign (lv, rhs))
    | If (c, t, e) -> If (c, List.map rw_stmt t, List.map rw_stmt e)
    | For (i, c, u, b) -> For (i, c, u, List.map rw_stmt b)
    | While (c, b) -> While (c, List.map rw_stmt b)
    | Block b -> Block (List.map rw_stmt b)
    | s -> s
  in
  {
    gen with
    init = List.map rw_stmt gen.init;
    step = List.map rw_stmt gen.step;
    update = List.map rw_stmt gen.update;
  }

let emit g spec =
  let gen =
    match Hashtbl.find_opt custom spec.Block.kind with
    | Some f -> f g spec
    | None -> emit_builtin g spec
  in
  quantize_outputs g gen

let supported spec =
  if Hashtbl.mem custom spec.Block.kind then true
  else
    match spec.Block.kind with
    | "Integrator" | "TransferFcn" | "StateSpace" | "FirstOrder" | "DcMotor"
    | "PowerStage" | "EncoderCounts" | "ThermalPlant" ->
        false
    | _ -> true
