open C_ast

let comm_runtime_unit ?(api = `Pe) ~name ~serial_bean ~n_sensors ~n_actuators () =
  (* the serial primitives differ between the two block-set variants *)
  let send_char, recv_stmt, rx_handler, hal_header =
    match api with
    | `Pe ->
        ( serial_bean ^ "_SendChar",
          Printf.sprintf "if (%s_RecvChar(&b) != ERR_OK) return;" serial_bean,
          serial_bean ^ "_OnRxChar",
          "PE_Types.h" )
    | `Autosar ->
        ( "CddUart_Transmit",
          "if (CddUart_Receive(&b) != E_OK) return;",
          "CddUart_RxNotification_" ^ serial_bean,
          "Mcal.h" )
  in
  let rt =
    Printf.sprintf
      {|/* PIL communication runtime: HDLC-style framing over %s.
 * Sensor packets (type 0x01) carry %d u16 values; after unpacking, one
 * model step runs and an actuator packet (type 0x02) with %d u16 values
 * is returned. Mirrors the host-side protocol of the simulator PC. */

#define PIL_SOF 0x7E
#define PIL_ESC 0x7D
#define PIL_TYPE_SENSOR 0x01
#define PIL_TYPE_ACTUATOR 0x02

extern volatile uint16_t pil_sensor_buf[%d];
extern volatile uint16_t pil_actuator_buf[%d];

static uint8_t pil_rx_frame[3 + 2 * %d + 2];
static uint8_t pil_rx_count;
static uint8_t pil_rx_in_frame;
static uint8_t pil_rx_escaped;
static uint8_t pil_seq;

static uint16_t pil_crc16(const uint8_t *p, uint8_t n) {
  uint16_t crc = 0xFFFFu;
  uint8_t i, b;
  for (i = 0; i < n; ++i) {
    crc ^= (uint16_t)p[i] << 8;
    for (b = 0; b < 8; ++b)
      crc = (crc & 0x8000u) ? (uint16_t)((crc << 1) ^ 0x1021u) : (uint16_t)(crc << 1);
  }
  return crc;
}

static void pil_send_byte_stuffed(uint8_t b) {
  if (b == PIL_SOF || b == PIL_ESC) {
    %s(PIL_ESC);
    %s(b ^ 0x20);
  } else {
    %s(b);
  }
}

static void pil_send_actuators(void) {
  uint8_t hdr[3];
  uint8_t payload[2 * %d];
  uint16_t crc;
  uint8_t i;
  hdr[0] = PIL_TYPE_ACTUATOR; hdr[1] = pil_seq; hdr[2] = 2 * %d;
  for (i = 0; i < %d; ++i) {
    payload[2 * i] = (uint8_t)(pil_actuator_buf[i] >> 8);
    payload[2 * i + 1] = (uint8_t)(pil_actuator_buf[i] & 0xFF);
  }
  crc = 0xFFFFu;
  { uint8_t j; uint16_t c = pil_crc16(hdr, 3);
    /* continue the CRC over the payload */
    for (j = 0; j < 2 * %d; ++j) {
      c ^= (uint16_t)payload[j] << 8;
      { uint8_t b2; for (b2 = 0; b2 < 8; ++b2)
          c = (c & 0x8000u) ? (uint16_t)((c << 1) ^ 0x1021u) : (uint16_t)(c << 1); }
    }
    crc = c; }
  %s(PIL_SOF);
  { uint8_t j;
    for (j = 0; j < 3; ++j) pil_send_byte_stuffed(hdr[j]);
    for (j = 0; j < 2 * %d; ++j) pil_send_byte_stuffed(payload[j]); }
  pil_send_byte_stuffed((uint8_t)(crc >> 8));
  pil_send_byte_stuffed((uint8_t)(crc & 0xFF));
}

static void pil_handle_frame(void) {
  uint8_t len = pil_rx_frame[2];
  uint16_t crc, got;
  uint8_t i;
  if (pil_rx_frame[0] != PIL_TYPE_SENSOR) return;
  if (len != 2 * %d) return;
  crc = pil_crc16(pil_rx_frame, (uint8_t)(3 + len));
  got = ((uint16_t)pil_rx_frame[3 + len] << 8) | pil_rx_frame[3 + len + 1];
  if (crc != got) return;
  pil_seq = pil_rx_frame[1];
  for (i = 0; i < %d; ++i)
    pil_sensor_buf[i] =
      ((uint16_t)pil_rx_frame[3 + 2 * i] << 8) | pil_rx_frame[3 + 2 * i + 1];
  /* one control period: step the model, reply with the actuators */
  %s_step();
  pil_send_actuators();
}

void %s(void) {
  uint8_t b;
  %s
  if (b == PIL_SOF) { pil_rx_in_frame = 1; pil_rx_count = 0; pil_rx_escaped = 0; return; }
  if (!pil_rx_in_frame) return;
  if (b == PIL_ESC) { pil_rx_escaped = 1; return; }
  if (pil_rx_escaped) { b ^= 0x20; pil_rx_escaped = 0; }
  if (pil_rx_count < sizeof pil_rx_frame) pil_rx_frame[pil_rx_count++] = b;
  if (pil_rx_count >= 3 && pil_rx_count == (uint8_t)(3 + pil_rx_frame[2] + 2)) {
    pil_rx_in_frame = 0;
    pil_handle_frame();
  }
}|}
      serial_bean n_sensors n_actuators
      (Stdlib.max 1 n_sensors) (Stdlib.max 1 n_actuators) n_sensors
      send_char send_char send_char n_actuators n_actuators n_actuators
      n_actuators send_char n_actuators n_sensors n_sensors name rx_handler
      recv_stmt
  in
  {
    unit_name = "pil_rt.c";
    items = [ Include_local (name ^ ".h"); Include_local hal_header; Raw_item rt ];
  }

let generate ?(opt = false) ~name ~project comp =
  let serial_bean =
    match
      List.find_opt
        (fun b -> match b.Bean.config with Bean.Serial _ -> true | _ -> false)
        (Bean_project.beans project)
    with
    | Some b -> b.Bean.bname
    | None ->
        raise
          (Target.Codegen_error
             "PIL target needs an AsynchroSerial bean for the communication line")
  in
  let a = Target.generate ~mode:Blockgen.Pil ~opt ~name ~project comp in
  let api =
    if
      List.exists
        (fun b ->
          let k = (Model.spec_of comp.Compile.model b).Block.kind in
          String.length k >= 3 && String.sub k 0 3 = "AR_")
        (Model.blocks comp.Compile.model)
    then `Autosar
    else `Pe
  in
  let n_sensors = List.length a.Target.schedule.Target.sensor_slots in
  let n_actuators = List.length a.Target.schedule.Target.actuator_slots in
  let rt = comm_runtime_unit ~api ~name ~serial_bean ~n_sensors ~n_actuators () in
  { a with Target.hal = a.Target.hal @ [ rt ] }
