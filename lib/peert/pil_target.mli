(** PEERT_PIL: the processor-in-the-loop variant of the target (§6).

    "The code generated for the peripheral blocks does not handle the
    peripherals hardware, but read/write the data from/to the
    communication buffer … some interrupt service routines are not
    invoked by the peripherals but the communication interrupt service
    routine when a corresponding event is indicated by the received
    packet." This wraps {!Target.generate} in [Pil] mode and adds the
    target-side communication runtime (framer, packet parser, reply
    composer) bound to the project's AsynchroSerial bean. *)

val generate :
  ?opt:bool ->
  name:string -> project:Bean_project.t -> Compile.t -> Target.artifacts
(** [opt] forwards to {!Target.generate} (MIR optimization passes on the
    model unit, default off).
    @raise Target.Codegen_error additionally when the bean project has no
    AsynchroSerial bean to carry the PIL link. *)

val comm_runtime_unit :
  ?api:[ `Pe | `Autosar ] ->
  name:string -> serial_bean:string -> n_sensors:int -> n_actuators:int ->
  unit -> C_ast.cunit
(** The generated [pil_rt.c]: receive ISR, framing state machine, CRC,
    sensor unpacking, step invocation and actuator reply. [api] selects
    the serial primitives: PE bean methods ([AS1_SendChar]) or the
    AUTOSAR variant's [CddUart] driver (default [`Pe]). *)
