open C_ast

type report = {
  plant_loc : int;
  runtime_loc : int;
  n_blocks : int;
  sim_step : float;
}

type artifacts = {
  plant_h : C_ast.cunit;
  plant_c : C_ast.cunit;
  sim_main_c : C_ast.cunit;
  makefile : string;
  report : report;
}

(* The plant code generation mirrors Target.generate's structure but
   admits continuous blocks through Plantgen and has no bean project. *)
let generate ~name ?(baud = 115200) ?n_sensors ?n_actuators ?sim_step comp =
  let m = comp.Compile.model in
  let dt = match sim_step with Some s -> s | None -> comp.Compile.base_dt in
  let all_blocks = Model.blocks m in
  List.iter
    (fun b ->
      let spec = Model.spec_of m b in
      if not (Plantgen.supported_sim spec) then
        Target.(
          raise
            (Codegen_error
               (Printf.sprintf "block %s (%s) has no simulator realisation"
                  (Model.block_name m b) spec.Block.kind))))
    all_blocks;
  let bname b = Blockgen.sanitize (Model.block_name m b) in
  let b_struct = name ^ "_B" and dw_struct = name ^ "_DW" in
  let u_struct = name ^ "_U" and y_struct = name ^ "_Y" in
  let sig_field b p = Printf.sprintf "%s_o%d" (bname b) p in
  let sig_expr (b, p) = Field (Var b_struct, sig_field b p) in
  let srcs = Compile.signal_sources comp in
  let b_fields = ref [] and dw_fields = ref [] in
  let init_stmts = ref [] and step_stmts = ref [] and update_stmts = ref [] in
  let cty_of = C_ast.cty_of_dtype in
  let n_in_ports = ref 0 and n_out_ports = ref 0 in
  List.iter
    (fun b ->
      let spec = Model.spec_of m b in
      let bi = Model.blk_index b in
      (match spec.Block.kind with
      | "Inport" ->
          n_in_ports :=
            Stdlib.max !n_in_ports (Param.int spec.Block.params "index" + 1)
      | "Outport" ->
          n_out_ports :=
            Stdlib.max !n_out_ports (Param.int spec.Block.params "index" + 1)
      | _ -> ());
      let out_dtypes = Array.to_list comp.Compile.out_types.(bi) in
      let out_tys = List.map cty_of out_dtypes in
      List.iteri (fun p ty -> b_fields := (ty, sig_field b p) :: !b_fields) out_tys;
      let gctx =
        {
          Blockgen.mode = Blockgen.Hw;
          name = bname b;
          ins = Array.to_list (Array.map sig_expr srcs.(bi));
          outs = List.init spec.Block.n_out (fun p -> sig_expr (b, p));
          out_tys;
          out_dtypes;
          dt;
          state = (fun f -> Field (Var dw_struct, bname b ^ "_" ^ f));
          ext_in = (fun i -> Field (Var u_struct, Printf.sprintf "in%d" i));
          ext_out = (fun i -> Field (Var y_struct, Printf.sprintf "out%d" i));
          pil_slot = None;
        }
      in
      let gen = Plantgen.emit ~dt gctx spec in
      List.iter
        (fun (ty, f) -> dw_fields := (ty, bname b ^ "_" ^ f) :: !dw_fields)
        gen.Blockgen.state_fields;
      init_stmts := !init_stmts @ gen.Blockgen.init;
      (* the simulator runs single rate: everything steps every dt *)
      step_stmts := !step_stmts @ gen.Blockgen.step;
      update_stmts := !update_stmts @ gen.Blockgen.update)
    (Array.to_list comp.Compile.order);
  let ext_in_fields = List.init !n_in_ports (fun i -> (Double_t, Printf.sprintf "in%d" i)) in
  let ext_out_fields =
    List.init !n_out_ports (fun i -> (Double_t, Printf.sprintf "out%d" i))
  in
  let plant_h =
    {
      unit_name = name ^ "_plant.h";
      items =
        [
          Include "stdint.h";
          Include "math.h";
          Struct_def (b_struct ^ "_t", List.rev !b_fields);
          Struct_def (dw_struct ^ "_t", List.rev !dw_fields);
          Struct_def (u_struct ^ "_t", ext_in_fields);
          Struct_def (y_struct ^ "_t", ext_out_fields);
          Raw_item
            (String.concat "\n"
               [
                 Printf.sprintf "extern %s_t %s;" u_struct u_struct;
                 Printf.sprintf "extern %s_t %s;" y_struct y_struct;
               ]);
          Proto (func Void (name ^ "_plant_initialize") [] []);
          Proto (func Void (name ^ "_plant_step") [] []);
        ];
    }
  in
  let plant_c =
    {
      unit_name = name ^ "_plant.c";
      items =
        [
          Include_local (name ^ "_plant.h");
          Global { gty = Named (b_struct ^ "_t"); gname = b_struct; ginit = None;
                   volatile = false; static = false };
          Global { gty = Named (dw_struct ^ "_t"); gname = dw_struct; ginit = None;
                   volatile = false; static = false };
          Global { gty = Named (u_struct ^ "_t"); gname = u_struct; ginit = None;
                   volatile = false; static = false };
          Global { gty = Named (y_struct ^ "_t"); gname = y_struct; ginit = None;
                   volatile = false; static = false };
          Global { gty = Double_t; gname = "model_time"; ginit = Some (flt 0.0);
                   volatile = false; static = true };
        ]
        @ Blockgen.used_cast_helpers (!init_stmts @ !step_stmts @ !update_stmts)
        @ [
          Func_def
            (func ~comment:"plant initial conditions" Void
               (name ^ "_plant_initialize") []
               (!init_stmts @ [ Assign (Var "model_time", flt 0.0) ]));
          Func_def
            (func
               ~comment:
                 (Printf.sprintf
                    "one %g s simulator step: outputs, then state advance" dt)
               Void (name ^ "_plant_step") []
               (!step_stmts @ !update_stmts
               @ [ Assign (Var "model_time",
                           Bin ("+", Var "model_time", flt dt)) ]));
        ];
    }
  in
  let ns = match n_sensors with Some n -> n | None -> !n_out_ports in
  let na = match n_actuators with Some n -> n | None -> !n_in_ports in
  let runtime =
    Printf.sprintf
      {|/* POSIX real-time loop and RS-232 host side of the PIL protocol.
 * Replaces the closed xPC target (paper section 8): open serial support,
 * clock_nanosleep pacing, overridable sensor/actuator mapping. */
#define _GNU_SOURCE
#include <stdio.h>
#include <stdint.h>
#include <fcntl.h>
#include <termios.h>
#include <time.h>
#include <unistd.h>
#include "%s_plant.h"

#define SIM_STEP_NS %dL
#define N_SENSORS %d
#define N_ACTUATORS %d
#define SOF 0x7E
#define ESC 0x7D

static uint16_t crc16(const uint8_t *p, int n) {
  uint16_t crc = 0xFFFFu; int i, b;
  for (i = 0; i < n; ++i) {
    crc ^= (uint16_t)p[i] << 8;
    for (b = 0; b < 8; ++b)
      crc = (crc & 0x8000u) ? (uint16_t)((crc << 1) ^ 0x1021u) : (uint16_t)(crc << 1);
  }
  return crc;
}

/* Default mapping: plant Outport k -> sensor slot k (raw cast), actuator
 * slot k -> plant Inport k scaled 1/65535. Override for real scalings. */
void sim_read_sensors(uint16_t *buf) {
%s}

void sim_apply_actuators(const uint16_t *buf) {
%s}

static int open_serial(const char *dev) {
  int fd = open(dev, O_RDWR | O_NOCTTY | O_NONBLOCK);
  struct termios tio;
  if (fd < 0) return -1;
  tcgetattr(fd, &tio);
  cfmakeraw(&tio);
  cfsetispeed(&tio, B%d);
  cfsetospeed(&tio, B%d);
  tcsetattr(fd, TCSANOW, &tio);
  return fd;
}

static void send_stuffed(int fd, uint8_t b) {
  uint8_t esc[2] = { ESC, (uint8_t)(b ^ 0x20) };
  if (b == SOF || b == ESC) { ssize_t r = write(fd, esc, 2); (void)r; }
  else { ssize_t r = write(fd, &b, 1); (void)r; }
}

static void send_sensor_packet(int fd, uint8_t seq) {
  uint16_t sensors[N_SENSORS];
  uint8_t frame[3 + 2 * N_SENSORS];
  uint16_t crc; int i;
  uint8_t sof = SOF;
  sim_read_sensors(sensors);
  frame[0] = 0x01; frame[1] = seq; frame[2] = 2 * N_SENSORS;
  for (i = 0; i < N_SENSORS; ++i) {
    frame[3 + 2 * i] = (uint8_t)(sensors[i] >> 8);
    frame[4 + 2 * i] = (uint8_t)(sensors[i] & 0xFF);
  }
  crc = crc16(frame, 3 + 2 * N_SENSORS);
  { ssize_t r = write(fd, &sof, 1); (void)r; }
  for (i = 0; i < 3 + 2 * N_SENSORS; ++i) send_stuffed(fd, frame[i]);
  send_stuffed(fd, (uint8_t)(crc >> 8));
  send_stuffed(fd, (uint8_t)(crc & 0xFF));
}

/* Non-blocking receive of one actuator packet; returns 1 when applied. */
static int poll_actuator_packet(int fd) {
  static uint8_t buf[3 + 2 * N_ACTUATORS + 2];
  static int count = -1, escaped = 0;
  uint8_t b;
  while (read(fd, &b, 1) == 1) {
    if (b == SOF) { count = 0; escaped = 0; continue; }
    if (count < 0) continue;
    if (b == ESC) { escaped = 1; continue; }
    if (escaped) { b ^= 0x20; escaped = 0; }
    if (count < (int)sizeof buf) buf[count++] = b;
    if (count >= 3 && count == 3 + buf[2] + 2) {
      uint16_t crc = crc16(buf, 3 + buf[2]);
      uint16_t got = ((uint16_t)buf[3 + buf[2]] << 8) | buf[4 + buf[2]];
      count = -1;
      if (buf[0] == 0x02 && buf[2] == 2 * N_ACTUATORS && crc == got) {
        uint16_t acts[N_ACTUATORS]; int i;
        for (i = 0; i < N_ACTUATORS; ++i)
          acts[i] = ((uint16_t)buf[3 + 2 * i] << 8) | buf[4 + 2 * i];
        sim_apply_actuators(acts);
        return 1;
      }
    }
  }
  return 0;
}

int main(int argc, char **argv) {
  const char *dev = argc > 1 ? argv[1] : "/dev/ttyS0";
  int fd = open_serial(dev);
  struct timespec next;
  uint8_t seq = 0;
  if (fd < 0) { perror("serial"); return 1; }
  %s_plant_initialize();
  clock_gettime(CLOCK_MONOTONIC, &next);
  for (;;) {
    send_sensor_packet(fd, seq++);
    %s_plant_step();
    poll_actuator_packet(fd);
    next.tv_nsec += SIM_STEP_NS;
    while (next.tv_nsec >= 1000000000L) { next.tv_nsec -= 1000000000L; ++next.tv_sec; }
    clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &next, NULL);
  }
  return 0;
}|}
      name
      (int_of_float (dt *. 1e9))
      ns na
      (String.concat ""
         (List.init ns (fun i ->
              if i < !n_out_ports then
                Printf.sprintf "  buf[%d] = (uint16_t)%s_Y.out%d;\n" i name i
              else Printf.sprintf "  buf[%d] = 0;\n" i)))
      (String.concat ""
         (List.init na (fun i ->
              if i < !n_in_ports then
                Printf.sprintf "  %s_U.in%d = (double)buf[%d] / 65535.0;\n" name i i
              else Printf.sprintf "  (void)buf[%d];\n" i)))
      baud baud name name
  in
  let sim_main_c = { unit_name = "sim_main.c"; items = [ Raw_item runtime ] } in
  let makefile =
    String.concat "\n"
      [
        Printf.sprintf "# Linux simulator target for model %s" name;
        "CC = gcc";
        "CFLAGS = -O2 -Wall -lm -lrt";
        Printf.sprintf "sim: sim_main.c %s_plant.c" name;
        Printf.sprintf "\t$(CC) -o $@ sim_main.c %s_plant.c $(CFLAGS)" name;
        "";
      ]
  in
  let plant_src = C_print.print_unit plant_c ^ C_print.print_unit plant_h in
  {
    plant_h;
    plant_c;
    sim_main_c;
    makefile;
    report =
      {
        plant_loc = C_print.loc plant_src;
        runtime_loc = C_print.loc runtime;
        n_blocks = List.length all_blocks;
        sim_step = dt;
      };
  }

let write_to_dir a ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write_unit u =
    let path = Filename.concat dir u.unit_name in
    let oc = open_out path in
    output_string oc (C_print.print_unit u);
    close_out oc;
    path
  in
  let paths = List.map write_unit [ a.plant_h; a.plant_c; a.sim_main_c ] in
  let mk = Filename.concat dir "Makefile" in
  let oc = open_out mk in
  output_string oc a.makefile;
  close_out oc;
  paths @ [ mk ]
