(* Safe-state supervisor: Nominal -> Degraded -> SafeStop with recovery.

   The MIL behaviour and the registered C emitter below are two
   transcriptions of the same statement list. Keep them in lock-step:
   the differential harness compares them bit-for-bit through fault
   transients, so every comparison, counter update and selected output
   must happen in the same order with the same constants on both sides.
   The block deliberately performs no float arithmetic — only
   comparisons among its inputs and parameter constants, integer
   counters, and an exact (double)mode cast — so bit-equality is not at
   the mercy of rounding. *)

type config = {
  w_max : float;
  duty_active : float;
  stale_limit : int;
  trip_limit : int;
  recover_limit : int;
  safe_duty : float;
  degraded_duty_max : float;
  wdog_bean : string option;
}

let default =
  {
    w_max = 260.0;
    duty_active = 0.05;
    stale_limit = 30;
    trip_limit = 50;
    recover_limit = 25;
    safe_duty = 0.0;
    degraded_duty_max = 0.5;
    wdog_bean = None;
  }

let kind = "SafeSupervisor"

let params_of (c : config) : Param.t =
  [
    ("w_max", Param.Float c.w_max);
    ("duty_active", Param.Float c.duty_active);
    ("stale_limit", Param.Int c.stale_limit);
    ("trip_limit", Param.Int c.trip_limit);
    ("recover_limit", Param.Int c.recover_limit);
    ("safe_duty", Param.Float c.safe_duty);
    ("degraded_duty_max", Param.Float c.degraded_duty_max);
  ]
  @ match c.wdog_bean with
    | Some b -> [ ("wdog_bean", Param.String b) ]
    | None -> []

let config_of (p : Param.t) : config =
  {
    w_max = Param.float p "w_max";
    duty_active = Param.float p "duty_active";
    stale_limit = Param.int p "stale_limit";
    trip_limit = Param.int p "trip_limit";
    recover_limit = Param.int p "recover_limit";
    safe_duty = Param.float p "safe_duty";
    degraded_duty_max = Param.float p "degraded_duty_max";
    wdog_bean = Param.string_opt p "wdog_bean";
  }

let block ?period (c : config) : Block.spec =
  {
    Block.kind;
    params = params_of c;
    n_in = 3;
    n_out = 2;
    feedthrough = [| true; true; true |];
    out_types = [| Block.Fixed_type Dtype.Double; Block.Fixed_type Dtype.Double |];
    sample =
      (match period with
      | Some p -> Sample_time.discrete p
      | None -> Sample_time.Inherited);
    event_outs = [||];
    make =
      (fun _ctx ->
        let prev = ref 0.0 in
        let stale = ref 0 in
        let ok = ref 0 in
        let bad = ref 0 in
        let mode = ref 0 in
        (* last APPLIED duty: the stale check must key on what actually
           drove the shaft, not on the PID's demand — otherwise SafeStop
           (shaft stopped, count frozen, PID still demanding) would read
           as stale forever and never recover *)
        let uprev = ref 0.0 in
        let held = [| 0.0; 0.0 |] in
        {
          Block.no_beh_state with
          out =
            (fun ~minor ~time:_ ins ->
              if not minor then begin
                let cnt = Value.to_float ins.(0) in
                let w = Value.to_float ins.(1) in
                let u = Value.to_float ins.(2) in
                if cnt = !prev && Float.abs !uprev >= c.duty_active then begin
                  if !stale < c.stale_limit then incr stale
                end
                else stale := 0;
                prev := cnt;
                let healthy =
                  Float.abs w <= c.w_max && !stale < c.stale_limit
                in
                if healthy then begin
                  bad := 0;
                  if !mode > 0 then begin
                    incr ok;
                    if !ok >= c.recover_limit then begin
                      mode := !mode - 1;
                      ok := 0
                    end
                  end
                  else ok := 0
                end
                else begin
                  ok := 0;
                  if !mode = 0 then mode := 1
                  else if !mode = 1 then begin
                    incr bad;
                    if !bad >= c.trip_limit then begin
                      mode := 2;
                      bad := 0
                    end
                  end
                end;
                held.(0) <-
                  (if !mode = 2 then c.safe_duty
                   else if !mode = 1 then
                     if u > c.degraded_duty_max then c.degraded_duty_max else u
                   else u);
                uprev := held.(0);
                held.(1) <- float_of_int !mode
              end;
              [| Value.F held.(0); Value.F held.(1) |]);
          reset =
            (fun () ->
              prev := 0.0;
              stale := 0;
              ok := 0;
              bad := 0;
              mode := 0;
              uprev := 0.0;
              held.(0) <- 0.0;
              held.(1) <- 0.0);
        });
  }

(* The TLC script: same statements, C spelling. State fields mirror the
   MIL refs; the raw count is compared as the integer it is (the MIL
   side's float comparison is exact for any int32). *)
let () =
  Blockgen.register kind (fun g spec ->
      let open C_ast in
      let c = config_of spec.Block.params in
      let st f = g.Blockgen.state f in
      let n = g.Blockgen.name in
      let in_ i = List.nth g.Blockgen.ins i in
      let out i = List.nth g.Blockgen.outs i in
      let cnt = Var (n ^ "_cnt") and w = Var (n ^ "_w") and u = Var (n ^ "_u") in
      let healthy = Var (n ^ "_healthy") in
      let step =
        [
          Decl (I32, n ^ "_cnt", Some (Cast_to (I32, in_ 0)));
          Decl (Double_t, n ^ "_w", Some (in_ 1));
          Decl (Double_t, n ^ "_u", Some (in_ 2));
          If
            ( Bin
                ( "&&",
                  Bin ("==", cnt, st "prev"),
                  Bin (">=", Call ("fabs", [ st "uprev" ]), flt c.duty_active) ),
              [
                If
                  ( Bin ("<", st "stale", Int_lit c.stale_limit),
                    [ Assign (st "stale", Bin ("+", st "stale", Int_lit 1)) ],
                    [] );
              ],
              [ Assign (st "stale", Int_lit 0) ] );
          Assign (st "prev", cnt);
          Decl
            ( U8, n ^ "_healthy",
              Some
                (Ternary
                   ( Bin
                       ( "&&",
                         Bin ("<=", Call ("fabs", [ w ]), flt c.w_max),
                         Bin ("<", st "stale", Int_lit c.stale_limit) ),
                     Int_lit 1, Int_lit 0 )) );
          If
            ( healthy,
              [
                Assign (st "bad", Int_lit 0);
                If
                  ( Bin (">", st "mode", Int_lit 0),
                    [
                      Assign (st "ok", Bin ("+", st "ok", Int_lit 1));
                      If
                        ( Bin (">=", st "ok", Int_lit c.recover_limit),
                          [
                            Assign
                              (st "mode", Cast_to (U8, Bin ("-", st "mode", Int_lit 1)));
                            Assign (st "ok", Int_lit 0);
                          ],
                          [] );
                    ],
                    [ Assign (st "ok", Int_lit 0) ] );
              ],
              [
                Assign (st "ok", Int_lit 0);
                If
                  ( Bin ("==", st "mode", Int_lit 0),
                    [ Assign (st "mode", Int_lit 1) ],
                    [
                      If
                        ( Bin ("==", st "mode", Int_lit 1),
                          [
                            Assign (st "bad", Bin ("+", st "bad", Int_lit 1));
                            If
                              ( Bin (">=", st "bad", Int_lit c.trip_limit),
                                [
                                  Assign (st "mode", Int_lit 2);
                                  Assign (st "bad", Int_lit 0);
                                ],
                                [] );
                          ],
                          [] );
                    ] );
              ] );
          Assign
            ( out 0,
              Ternary
                ( Bin ("==", st "mode", Int_lit 2),
                  flt c.safe_duty,
                  Ternary
                    ( Bin ("==", st "mode", Int_lit 1),
                      Ternary
                        ( Bin (">", u, flt c.degraded_duty_max),
                          flt c.degraded_duty_max, u ),
                      u ) ) );
          Assign (st "uprev", out 0);
          Assign (out 1, Cast_to (Double_t, st "mode"));
        ]
        @
        (* service the watchdog from the control step — deployment build
           only: the PIL build's step runs under the host interpreter,
           which has no HAL (the harness models the watchdog itself) *)
        match (g.Blockgen.mode, c.wdog_bean) with
        | Blockgen.Hw, Some bean -> [ Expr (call (bean ^ "_Clear") []) ]
        | _ -> []
      in
      {
        Blockgen.state_fields =
          [
            (I32, "prev"); (I32, "stale"); (I32, "ok"); (I32, "bad");
            (U8, "mode"); (Double_t, "uprev");
          ];
        init =
          [
            Assign (st "prev", Int_lit 0);
            Assign (st "stale", Int_lit 0);
            Assign (st "ok", Int_lit 0);
            Assign (st "bad", Int_lit 0);
            Assign (st "mode", Int_lit 0);
            Assign (st "uprev", flt 0.0);
          ];
        step;
        update = [];
        needs_time = false;
      })
