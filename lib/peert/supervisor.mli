(** Generated safe-state supervisor.

    A small statechart block (Nominal → Degraded → SafeStop) that rides
    between the controller and the actuator and implements graceful
    degradation: it range-checks the measured speed, detects a stale
    feedback sample (encoder count frozen while the previously APPLIED
    duty says the shaft should move — keyed on the supervisor's own
    output, not the PID demand, so SafeStop with a stopped shaft can
    still recover), caps the duty while Degraded, forces a safe
    duty in SafeStop, recovers one level per [recover_limit] consecutive
    healthy samples — and, in the deployment build, services the
    project's watchdog bean every step so a control-loop stall is caught
    by the silicon.

    Like every PEERT block it exists twice: an s-function behaviour for
    MIL and a registered C emitter (kind ["SafeSupervisor"]) for the
    generated step function. Both sides perform the identical float
    comparisons and integer counter updates in the identical order, so
    MIL-vs-SIL lock-step stays bit-exact through fault transients.

    Ports: in0 = raw feedback count (integer), in1 = measured speed,
    in2 = commanded duty; out0 = supervised duty, out1 = mode
    (0 nominal / 1 degraded / 2 safe-stop, as a double). *)

type config = {
  w_max : float;  (** plausible |speed| ceiling, rad/s *)
  duty_active : float;
      (** |duty| above which a frozen count is suspicious *)
  stale_limit : int;  (** frozen samples before the feedback is stale *)
  trip_limit : int;  (** unhealthy samples in Degraded before SafeStop *)
  recover_limit : int;  (** healthy samples per recovery level *)
  safe_duty : float;  (** duty forced in SafeStop *)
  degraded_duty_max : float;  (** duty ceiling while Degraded *)
  wdog_bean : string option;
      (** watchdog bean serviced by the generated step (deployment build
          only; the PIL build has no HAL to call) *)
}

val default : config
(** Tuned for the servo case study at 1 kHz: [w_max] 260 rad/s,
    [duty_active] 0.05, [stale_limit] 30, [trip_limit] 50,
    [recover_limit] 25, [safe_duty] 0, [degraded_duty_max] 0.5, no
    watchdog. *)

val kind : string
(** ["SafeSupervisor"] — the registered emitter's dispatch key. *)

val block : ?period:float -> config -> Block.spec
