open C_ast

type report = {
  n_blocks : int;
  app_loc : int;
  hal_loc : int;
  state_bytes : int;
  signal_bytes : int;
  est_flash_bytes : int;
  est_ram_bytes : int;
  step_cycles : int;
  step_time : float;
  group_cycles : (string * int) list;
  stack_bytes : int;
  warnings : string list;
}

type schedule = {
  base_period : float;
  periodic_cycles : (Model.blk * int) list;
  group_cycle_map : (Model.group * int) list;
  sensor_slots : (Model.blk * int) list;
  actuator_slots : (Model.blk * int) list;
  timer_bean : string option;
  total_step_cycles : int;
  isr_stack_bytes : int;
}

type artifacts = {
  model_h : C_ast.cunit;
  model_c : C_ast.cunit;
  main_c : C_ast.cunit;
  hal : C_ast.cunit list;
  makefile : string;
  report : report;
  schedule : schedule;
}

exception Codegen_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Codegen_error s)) fmt

let cty_bytes = function
  | Double_t -> 8
  | Float_t | I32 | U32 -> 4
  | I16 | U16 -> 2
  | I8 | U8 -> 1
  | Arr (t, n) -> (
      n * (match t with Double_t -> 8 | I32 | U32 | Float_t -> 4 | I16 | U16 -> 2 | _ -> 1))
  | _ -> 4

(* Saturating fixed-point helpers shared by FixPid code. *)
let fix_helpers =
  [
    Func_def
      (func ~static:true ~comment:"saturate a 32-bit value into int16 range" I16
         "pe_sat16"
         [ (I32, "x") ]
         [
           (* single exit point (MISRA): saturate with nested ternaries *)
           Return
             (Some
                (Cast_to
                   ( I16,
                     Ternary
                       ( Bin (">", Var "x", Int_lit 32767),
                         Int_lit 32767,
                         Ternary
                           ( Bin ("<", Var "x", Int_lit (-32768)),
                             Int_lit (-32768),
                             Var "x" ) ) )));
         ]);
    Func_def
      (func ~static:true ~comment:"saturating 32-bit addition" I32 "pe_sat_add32"
         [ (I32, "a"); (I32, "b") ]
         [
           Decl (Named "int64_t", "s", Some (Bin ("+", Cast_to (Named "int64_t", Var "a"), Var "b")));
           Return
             (Some
                (Cast_to
                   ( I32,
                     Ternary
                       ( Bin (">", Var "s", Var "INT32_MAX"),
                         Var "INT32_MAX",
                         Ternary
                           ( Bin ("<", Var "s", Var "INT32_MIN"),
                             Var "INT32_MIN",
                             Var "s" ) ) )));
         ]);
    Func_def
      (func ~static:true
         ~comment:"fractional multiply: (a*b) >> shift, rounded to nearest" I32
         "pe_mul_shift"
         [ (I32, "a"); (I32, "b"); (I32, "shift") ]
         [
           Decl
             ( Named "int64_t", "p",
               Some (Bin ("*", Cast_to (Named "int64_t", Var "a"), Var "b")) );
           Assign
             ( Var "p",
               Bin ("+", Var "p", Bin ("<<", Cast_to (Named "int64_t", Int_lit 1),
                                       Bin ("-", Var "shift", Int_lit 1))) );
           Return (Some (Cast_to (I32, Bin (">>", Var "p", Var "shift"))));
         ]);
  ]

let is_sensor_kind = function
  | "PE_Adc" | "PE_QuadDec" | "PE_BitIO_In" | "AR_Adc" | "AR_Icu" | "AR_Dio_In" ->
      true
  | _ -> false

let is_actuator_kind = function
  | "PE_Pwm" | "PE_BitIO_Out" | "PE_Dac" | "AR_Pwm" | "AR_Dio_Out" -> true
  | _ -> false

let is_autosar_kind kind =
  String.length kind >= 3 && String.sub kind 0 3 = "AR_"

(* ISR entry point a bean event maps to: PE events are
   <bean>_<EventName>; the AUTOSAR variant uses driver notifications. *)
let event_handler_name ~kind ~bean ~event =
  if is_autosar_kind kind then
    match kind with
    | "AR_TimerInt" -> "Gpt_Notification_" ^ bean
    | "AR_Adc" -> "Adc_Notification_" ^ bean
    | _ -> bean ^ "_" ^ event
  else bean ^ "_" ^ event

(* codegen metrics: volume of generated output, across all targets *)
let c_blocks_generated = Obs.counter "peert.blocks_generated"
let c_lines_emitted = Obs.counter "peert.lines_emitted"
let c_generations = Obs.counter "peert.generations"

let generate ?(mode = Blockgen.Hw) ?(opt = false) ~name ~project comp =
  Obs.span "peert.generate" @@ fun () ->
  let m = comp.Compile.model in
  let mcu = Bean_project.mcu project in
  (match Bean_project.verify project with
  | Ok () -> ()
  | Error msgs ->
      err "bean project does not verify:\n%s" (String.concat "\n" msgs));
  let all_blocks = Model.blocks m in
  List.iter
    (fun b ->
      let spec = Model.spec_of m b in
      if not (Blockgen.supported spec) then
        err
          "block %s (%s) has no embedded realisation; generate code from the \
           controller subsystem only"
          (Model.block_name m b) spec.Block.kind)
    all_blocks;
  let bname b = Blockgen.sanitize (Model.block_name m b) in
  let b_struct = name ^ "_B" and dw_struct = name ^ "_DW" in
  let u_struct = name ^ "_U" and y_struct = name ^ "_Y" in
  let sig_field b p = Printf.sprintf "%s_o%d" (bname b) p in
  let sig_expr (b, p) = Field (Var b_struct, sig_field b p) in
  (* PIL buffer slots, in model order *)
  let sensor_slots = ref [] and actuator_slots = ref [] in
  List.iter
    (fun b ->
      let spec = Model.spec_of m b in
      if is_sensor_kind spec.Block.kind then
        sensor_slots := (b, List.length !sensor_slots) :: !sensor_slots
      else if is_actuator_kind spec.Block.kind then
        actuator_slots := (b, List.length !actuator_slots) :: !actuator_slots)
    all_blocks;
  let sensor_slots = List.rev !sensor_slots in
  let actuator_slots = List.rev !actuator_slots in
  (* per-block emission *)
  let srcs = Compile.signal_sources comp in
  let b_fields = ref [] and dw_fields = ref [] in
  let init_stmts = ref [] and const_stmts = ref [] in
  let needs_time = ref false in
  let gens = Hashtbl.create 32 in
  List.iter
    (fun b ->
      let spec = Model.spec_of m b in
      let bi = Model.blk_index b in
      let out_dtypes = Array.to_list comp.Compile.out_types.(bi) in
      let out_tys = List.map cty_of_dtype out_dtypes in
      List.iteri
        (fun p ty -> b_fields := (ty, sig_field b p) :: !b_fields)
        out_tys;
      let ins = Array.to_list (Array.map sig_expr srcs.(bi)) in
      let outs = List.init spec.Block.n_out (fun p -> sig_expr (b, p)) in
      let dt =
        match comp.Compile.sample.(bi) with
        | Sample_time.R_discrete { period; _ } -> period
        | _ -> comp.Compile.base_dt
      in
      let gctx =
        {
          Blockgen.mode;
          name = bname b;
          ins;
          outs;
          out_tys;
          out_dtypes;
          dt;
          state = (fun f -> Field (Var dw_struct, bname b ^ "_" ^ f));
          ext_in = (fun i -> Field (Var u_struct, Printf.sprintf "in%d" i));
          ext_out = (fun i -> Field (Var y_struct, Printf.sprintf "out%d" i));
          pil_slot =
            (match List.assoc_opt b sensor_slots with
            | Some s -> Some s
            | None -> List.assoc_opt b actuator_slots);
        }
      in
      let gen =
        try Blockgen.emit gctx spec
        with Blockgen.Unsupported msg -> err "%s: %s" (Model.block_name m b) msg
      in
      List.iter
        (fun (ty, f) -> dw_fields := (ty, bname b ^ "_" ^ f) :: !dw_fields)
        gen.Blockgen.state_fields;
      init_stmts := !init_stmts @ gen.Blockgen.init;
      if comp.Compile.sample.(bi) = Sample_time.R_const then
        const_stmts := !const_stmts @ gen.Blockgen.step @ gen.Blockgen.update;
      if gen.Blockgen.needs_time then needs_time := true;
      Hashtbl.replace gens bi gen)
    all_blocks;
  let gen_of b = Hashtbl.find gens (Model.blk_index b) in
  (* rates *)
  let base = comp.Compile.base_dt in
  let divisor_of period = int_of_float (Float.round (period /. base)) in
  let rates =
    Array.to_list comp.Compile.order
    |> List.filter_map (fun b ->
           match comp.Compile.sample.(Model.blk_index b) with
           | Sample_time.R_discrete { period; _ } -> Some (divisor_of period)
           | Sample_time.R_continuous ->
               err "continuous block %s in generated model" (Model.block_name m b)
           | _ -> None)
    |> List.sort_uniq Stdlib.compare
  in
  let blocks_at_rate d =
    Array.to_list comp.Compile.order
    |> List.filter (fun b ->
           match comp.Compile.sample.(Model.blk_index b) with
           | Sample_time.R_discrete { period; _ } -> divisor_of period = d
           | _ -> false)
  in
  let rate_section d =
    let bs = blocks_at_rate d in
    let steps = List.concat_map (fun b -> (gen_of b).Blockgen.step) bs in
    let updates = List.concat_map (fun b -> (gen_of b).Blockgen.update) bs in
    let body =
      (Comment (Printf.sprintf "rate %g s (base x%d)" (float_of_int d *. base) d)
       :: steps)
      @ updates
    in
    if d = 1 then body
    else
      [
        If
          ( Bin ("==", Bin ("%", Var (name ^ "_tick"), Int_lit d), Int_lit 0),
            body, [] );
      ]
  in
  let step_body =
    List.concat_map rate_section rates
    @ [ Expr (Un ("++", Var (name ^ "_tick"))) ]
    @ (if !needs_time then
         [ Assign (Var "model_time", Bin ("+", Var "model_time", flt base)) ]
       else [])
  in
  (* function-call groups *)
  let group_fn g = Printf.sprintf "%s_%s" name (Blockgen.sanitize (Model.group_name m g)) in
  let group_defs =
    List.map
      (fun (g, order) ->
        let steps = List.concat_map (fun b -> (gen_of b).Blockgen.step) (Array.to_list order) in
        let updates =
          List.concat_map (fun b -> (gen_of b).Blockgen.update) (Array.to_list order)
        in
        Func_def
          (func
             ~comment:
               (Printf.sprintf "function-call subsystem %s (executed in its \
                                triggering event's ISR)"
                  (Model.group_name m g))
             Void (group_fn g) [] (steps @ updates)))
      comp.Compile.group_order
  in
  (* external I/O structs *)
  let ext_in_fields =
    List.filter_map
      (fun b ->
        let spec = Model.spec_of m b in
        if spec.Block.kind = "Inport" then
          Some
            ( cty_of_dtype comp.Compile.out_types.(Model.blk_index b).(0),
              Printf.sprintf "in%d" (Param.int spec.Block.params "index") )
        else None)
      all_blocks
  in
  let ext_out_fields =
    List.filter_map
      (fun b ->
        let spec = Model.spec_of m b in
        if spec.Block.kind = "Outport" then
          Some
            ( cty_of_dtype comp.Compile.in_types.(Model.blk_index b).(0),
              Printf.sprintf "out%d" (Param.int spec.Block.params "index") )
        else None)
      all_blocks
  in
  let maybe_struct nm fields =
    if fields = [] then [] else [ Struct_def (nm ^ "_t", fields) ]
  in
  let maybe_global nm =
    if nm = [] then [] else nm
  in
  let model_h =
    {
      unit_name = name ^ ".h";
      items =
        [
          Include "stdint.h";
          Include "math.h";
          Item_comment "Block I/O (signals), states (DWork), external inputs/outputs";
          Struct_def (b_struct ^ "_t", List.rev !b_fields);
          Struct_def (dw_struct ^ "_t", List.rev !dw_fields);
        ]
        @ maybe_struct u_struct ext_in_fields
        @ maybe_struct y_struct ext_out_fields
        @ [
            Proto (func Void (name ^ "_initialize") [] []);
            Proto (func Void (name ^ "_step") [] []);
          ]
        @ List.map
            (fun (g, _) -> Proto (func Void (group_fn g) [] []))
            comp.Compile.group_order;
    }
  in
  let uses_autosar =
    List.exists (fun b -> is_autosar_kind (Model.spec_of m b).Block.kind) all_blocks
  in
  (* PIL mode exchanges peripheral data through these buffers *)
  let pil_buffer_items =
    [
      Global
        { gty = Arr (U16, Stdlib.max 1 (List.length sensor_slots));
          gname = "pil_sensor_buf"; ginit = None; volatile = true; static = false };
      Global
        { gty = Arr (U16, Stdlib.max 1 (List.length actuator_slots));
          gname = "pil_actuator_buf"; ginit = None; volatile = true;
          static = false };
    ]
  in
  (* bean method prototypes used by the generated code *)
  let bean_proto_items =
    if uses_autosar then
      Include_local "Mcal.h"
      :: (if mode = Blockgen.Pil then pil_buffer_items else [])
    else if mode = Blockgen.Hw then
      [
        Raw_item
          (String.concat "\n"
             ("/* bean method interface (implemented by the generated HAL) */"
             :: List.concat_map
                  (fun b ->
                    List.map
                      (fun (_, proto) -> "extern " ^ proto ^ ";")
                      (Bean.methods b))
                  (Bean_project.beans project)));
      ]
    else pil_buffer_items
  in
  let model_c =
    {
      unit_name = name ^ ".c";
      items =
        (Include_local (name ^ ".h")
         ::
         (* the PE variant's method interface lives in PE_Types.h; the
            AUTOSAR variant brings its own Std_Types through Mcal.h *)
         (if uses_autosar then [] else [ Include_local "PE_Types.h" ]))
        @ bean_proto_items
        @ [
            Global
              { gty = Named (b_struct ^ "_t"); gname = b_struct; ginit = None;
                volatile = false; static = false };
            Global
              { gty = Named (dw_struct ^ "_t"); gname = dw_struct; ginit = None;
                volatile = false; static = false };
          ]
        @ maybe_global
            (if ext_in_fields <> [] then
               [ Global { gty = Named (u_struct ^ "_t"); gname = u_struct;
                          ginit = None; volatile = true; static = false } ]
             else [])
        @ maybe_global
            (if ext_out_fields <> [] then
               [ Global { gty = Named (y_struct ^ "_t"); gname = y_struct;
                          ginit = None; volatile = true; static = false } ]
             else [])
        @ [
            Global { gty = U32; gname = name ^ "_tick"; ginit = Some (Int_lit 0);
                     volatile = false; static = true };
          ]
        @ (if !needs_time then
             [ Global { gty = Double_t; gname = "model_time";
                        ginit = Some (flt 0.0); volatile = false; static = true } ]
           else [])
        @ fix_helpers
        @ Blockgen.used_cast_helpers
            (!init_stmts @ !const_stmts @ step_body
            @ List.concat_map
                (fun (_, order) ->
                  List.concat_map
                    (fun b ->
                      (gen_of b).Blockgen.step @ (gen_of b).Blockgen.update)
                    (Array.to_list order))
                comp.Compile.group_order)
        @ [
            Func_def
              (func ~comment:"model initialisation: states and constant blocks"
                 Void (name ^ "_initialize") []
                 (!init_stmts @ !const_stmts
                 @ [ Assign (Var (name ^ "_tick"), Int_lit 0) ]
                 @ if !needs_time then [ Assign (Var "model_time", flt 0.0) ] else []));
            Func_def
              (func
                 ~comment:
                   "one base-rate step; executed non-preemptively in the timer \
                    interrupt"
                 Void (name ^ "_step") [] step_body);
          ]
        @ group_defs;
    }
  in
  (* route the unit through the MIR pipeline: lift -> (verify +
     optimise when [opt]) -> lower. Without [opt] this is the exact
     identity on the unit, so golden traces and findings are stable. *)
  let model_c = Mir_unit.process ~opt ~header:model_h.items model_c in
  (* event wiring: bean events -> ISR bodies *)
  let event_handlers =
    List.concat_map
      (fun b ->
        let spec = Model.spec_of m b in
        Array.to_list spec.Block.event_outs
        |> List.mapi (fun i ev -> (b, i, ev))
        |> List.filter_map (fun (b, i, ev) ->
               match Model.event_target m (b, i) with
               | Some g ->
                   let bean = Param.string spec.Block.params "bean" in
                   Some
                     (Func_def
                        (func
                           ~comment:
                             (Printf.sprintf
                                "bean event ISR: %s triggers function-call group %s"
                                ev (Model.group_name m g))
                           Void
                           (event_handler_name ~kind:spec.Block.kind ~bean ~event:ev)
                           []
                           [ Expr (call (group_fn g) []) ]))
               | None -> None))
      all_blocks
  in
  let timer_bean_kinded =
    List.find_map
      (fun b ->
        let spec = Model.spec_of m b in
        if
          (spec.Block.kind = "PE_TimerInt" || spec.Block.kind = "AR_TimerInt")
          && Model.event_target m (b, 0) = None
        then Some (spec.Block.kind, Param.string spec.Block.params "bean")
        else None)
      all_blocks
  in
  let timer_bean = Option.map snd timer_bean_kinded in
  let timer_isr =
    match timer_bean_kinded with
    | Some (kind, bean) ->
        [
          Func_def
            (func
               ~comment:
                 "periodic model execution: the timer interrupt runs the whole \
                  step non-preemptively"
               Void
               (event_handler_name ~kind ~bean ~event:"OnInterrupt")
               []
               [ Expr (call (name ^ "_step") []) ]);
        ]
    | None ->
        [
          Item_comment
            "no TimerInt bean in the model: the integrator harness must call \
             <model>_step() itself";
        ]
  in
  let bean_inits =
    if uses_autosar then
      Expr (call "Mcal_Init" [])
      :: List.concat_map
           (fun b ->
             match b.Bean.config with
             | Bean.Timer_int _ ->
                 [ Expr (call "Gpt_StartTimer"
                           [ Var (Autosar_code.symbolic_id b); Int_lit 0 ]) ]
             | _ -> [])
           (Bean_project.beans project)
    else
      List.concat_map
        (fun b ->
          let n = b.Bean.bname in
          match b.Bean.config with
          | Bean.Timer_int _ -> [ Expr (call (n ^ "_Enable") []) ]
          | Bean.Pwm _ | Bean.Dac _ -> [ Expr (call (n ^ "_Enable") []) ]
          | Bean.Serial _ -> [ Expr (call (n ^ "_Init") []) ]
          | Bean.Bit_io { direction = Bean.Out_pin; _ } ->
              [ Expr (call (n ^ "_Init") []) ]
          | Bean.Watch_dog _ -> [ Expr (call (n ^ "_Enable") []) ]
          | _ -> [])
        (Bean_project.beans project)
  in
  let main_c =
    {
      unit_name = "main.c";
      items =
        (Include_local (name ^ ".h")
         :: (if uses_autosar then [ Include_local "Mcal.h" ]
             else [ Include_local "PE_Types.h" ]))
        @ [
          Item_comment
            (Printf.sprintf
               "PEERT %s target for %s -- entry point and interrupt wiring"
               (match mode with Blockgen.Hw -> "deployment" | Blockgen.Pil -> "PIL")
               mcu.Mcu_db.name);
        ]
        @ timer_isr @ event_handlers
        @ [
            Func_def
              (func ~comment:"hand-written background task hook" ~static:true Void
                 "background_task" []
                 [ Comment "idle; the application runs entirely in interrupts" ]);
            Func_def
              (func ~comment:"application entry" (Named "int") "main" []
                 ([ Comment "low-level bean initialisation" ] @ bean_inits
                 @ [
                     Expr (call (name ^ "_initialize") []);
                     Comment "interrupts drive everything from here on";
                     While (Int_lit 1, [ Expr (call "background_task" []) ]);
                     Return (Some (Int_lit 0));
                   ]));
          ];
    }
  in
  let hal =
    if uses_autosar then Autosar_code.hal_units project
    else Bean_project.hal_units project
  in
  let cc, cflags =
    match mcu.Mcu_db.family with
    | "56F83xx" -> ("mwcc56800e", "-O4 -Mdsp56800e")
    | "HCS12" -> ("mwccs12", "-O2 -Ms12")
    | _ -> ("m68k-elf-gcc", "-O2 -mcpu=5213")
  in
  let hal_sources = List.filter (fun u -> Filename.check_suffix u.unit_name ".c") hal in
  let makefile =
    String.concat "\n"
      ([
         Printf.sprintf "# Generated makefile -- PEERT target for %s" mcu.Mcu_db.name;
         Printf.sprintf "CC = %s" cc;
         Printf.sprintf "CFLAGS = %s" cflags;
         Printf.sprintf "OBJS = %s.o main.o %s" name
           (String.concat " "
              (List.map
                 (fun u -> Filename.remove_extension u.unit_name ^ ".o")
                 hal_sources));
         "";
         Printf.sprintf "%s.elf: $(OBJS)" name;
         "\t$(CC) $(CFLAGS) -o $@ $(OBJS)";
         "";
         "%.o: %.c";
         "\t$(CC) $(CFLAGS) -c $<";
         "";
         "flash: " ^ name ^ ".elf";
         "\tpeert_download $<";
         "";
       ])
  in
  (* report + schedule *)
  let dtype_of_block b =
    let tys = comp.Compile.out_types.(Model.blk_index b) in
    if Array.length tys > 0 then tys.(0) else Dtype.Double
  in
  let cycles_of b =
    Cost_model.cycles_of_block mcu (Model.spec_of m b) (dtype_of_block b)
  in
  let periodic_blocks = Array.to_list comp.Compile.order in
  let periodic_cycles = List.map (fun b -> (b, cycles_of b)) periodic_blocks in
  let total_step_cycles =
    List.fold_left (fun acc (_, c) -> acc + c) 0 periodic_cycles
  in
  let group_cycle_map =
    List.map
      (fun (g, order) ->
        (g, Array.fold_left (fun acc b -> acc + cycles_of b) 0 order))
      comp.Compile.group_order
  in
  let stack_bytes =
    64
    + List.fold_left
        (fun acc b -> Stdlib.max acc (Cost_model.stack_bytes_of_block (Model.spec_of m b)))
        0 all_blocks
  in
  let state_bytes =
    List.fold_left (fun acc (ty, _) -> acc + cty_bytes ty) 0 !dw_fields
  in
  let signal_bytes =
    List.fold_left (fun acc (ty, _) -> acc + cty_bytes ty) 0 !b_fields
  in
  let app_loc =
    C_print.loc (C_print.print_unit model_c)
    + C_print.loc (C_print.print_unit model_h)
    + C_print.loc (C_print.print_unit main_c)
  in
  let hal_loc =
    List.fold_left (fun acc u -> acc + C_print.loc (C_print.print_unit u)) 0 hal
  in
  let est_flash = ((app_loc + hal_loc) * 8) + 512 in
  let est_ram = state_bytes + signal_bytes + stack_bytes + 128 in
  let warnings = ref [] in
  if est_ram > mcu.Mcu_db.ram_bytes then
    warnings :=
      Printf.sprintf "estimated RAM %d B exceeds the %d B of %s" est_ram
        mcu.Mcu_db.ram_bytes mcu.Mcu_db.name
      :: !warnings;
  if est_flash > mcu.Mcu_db.flash_bytes then
    warnings :=
      Printf.sprintf "estimated flash %d B exceeds the %d B of %s" est_flash
        mcu.Mcu_db.flash_bytes mcu.Mcu_db.name
      :: !warnings;
  let report =
    {
      n_blocks = List.length all_blocks;
      app_loc;
      hal_loc;
      state_bytes;
      signal_bytes;
      est_flash_bytes = est_flash;
      est_ram_bytes = est_ram;
      step_cycles = total_step_cycles;
      step_time = float_of_int total_step_cycles /. mcu.Mcu_db.f_cpu_hz;
      group_cycles =
        List.map
          (fun (g, c) -> (Model.group_name m g, c))
          group_cycle_map;
      stack_bytes;
      warnings = !warnings;
    }
  in
  let schedule =
    {
      base_period = base;
      periodic_cycles;
      group_cycle_map;
      sensor_slots;
      actuator_slots;
      timer_bean;
      total_step_cycles;
      isr_stack_bytes = stack_bytes;
    }
  in
  Obs.add c_generations 1;
  Obs.add c_blocks_generated report.n_blocks;
  Obs.add c_lines_emitted (app_loc + hal_loc);
  { model_h; model_c; main_c; hal; makefile; report; schedule }

let write_to_dir a ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write_unit u =
    let path = Filename.concat dir u.unit_name in
    let oc = open_out path in
    output_string oc (C_print.print_unit u);
    close_out oc;
    path
  in
  let paths = List.map write_unit (a.model_h :: a.model_c :: a.main_c :: a.hal) in
  let mk = Filename.concat dir "Makefile" in
  let oc = open_out mk in
  output_string oc a.makefile;
  close_out oc;
  paths @ [ mk ]
