(** The PEERT code-generation target (§5).

    Turns a compiled controller model plus its Processor Expert project
    into a complete embedded application: [<model>.h] / [<model>.c] with
    the block-I/O, state, external-input and external-output structures
    and the [<model>_initialize] / [<model>_step] functions; the
    event-to-ISR wiring ("periodic parts of the model code are executed
    nonpreemptively in a timer interrupt; function-call subsystems …
    within interrupt service routines of triggering events"); [main.c];
    the generated HAL of every bean; and a makefile. The PIL variant is
    produced by {!Pil_target}. *)

type report = {
  n_blocks : int;
  app_loc : int;  (** generated application lines of code *)
  hal_loc : int;  (** generated HAL lines of code *)
  state_bytes : int;  (** discrete state (DWork) size *)
  signal_bytes : int;  (** block I/O structure size *)
  est_flash_bytes : int;
  est_ram_bytes : int;
  step_cycles : int;  (** worst-case base-rate step cost on the MCU *)
  step_time : float;  (** the same in seconds at the MCU clock *)
  group_cycles : (string * int) list;  (** per function-call group *)
  stack_bytes : int;
  warnings : string list;  (** e.g. RAM estimate exceeding the part *)
}

(** Execution schedule handed to the PIL executive: which blocks run in
    the periodic step and in each ISR group, with their cycle costs. *)
type schedule = {
  base_period : float;
  periodic_cycles : (Model.blk * int) list;
  group_cycle_map : (Model.group * int) list;
  sensor_slots : (Model.blk * int) list;
      (** peripheral input blocks and their PIL buffer slot *)
  actuator_slots : (Model.blk * int) list;
  timer_bean : string option;
      (** the TimerInt bean driving the periodic step, if modelled *)
  total_step_cycles : int;
  isr_stack_bytes : int;
}

val fix_helpers : C_ast.item list
(** Static definitions of the saturating fixed-point helpers
    ([pe_sat16], [pe_sat_add32], [pe_mul_shift]) emitted alongside
    fixed-point controller code; exposed so tests can load them into
    the SIL interpreter next to hand-built units. *)

val is_sensor_kind : string -> bool
(** Peripheral input kinds (ADC, quadrature decoder, digital in). *)

val is_actuator_kind : string -> bool
(** Peripheral output kinds (PWM, DAC, digital out). *)

type artifacts = {
  model_h : C_ast.cunit;
  model_c : C_ast.cunit;
  main_c : C_ast.cunit;
  hal : C_ast.cunit list;
  makefile : string;
  report : report;
  schedule : schedule;
}

exception Codegen_error of string

val generate :
  ?mode:Blockgen.mode ->
  ?opt:bool ->
  name:string ->
  project:Bean_project.t ->
  Compile.t ->
  artifacts
(** The generated [<model>.c] is produced through the MIR pipeline
    (lift to {!Mir} -> verify -> lower). With [opt] (default [false])
    the IR-verified optimisation passes of {!Mir_opt} run in between;
    the output is bit-exact under SIL execution but syntactically
    smaller.

    @raise Codegen_error when the model contains blocks with no embedded
    realisation (generate from the controller subsystem only, as §5
    prescribes) or the bean project does not verify. *)

val write_to_dir : artifacts -> dir:string -> string list
(** Materialise all units (and the makefile) under [dir]; returns the
    file paths written. *)
