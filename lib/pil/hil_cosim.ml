(* deployment-stage metrics, mirrors the Pil_cosim set *)
let h_release = Obs.hist "hil.release_latency_s"
let h_exec = Obs.hist "hil.exec_s"
let c_periods = Obs.counter "hil.periods"
let c_overruns = Obs.counter "hil.overruns"
let c_wdog_bites = Obs.counter "hil.watchdog_bites"

type profile = {
  periods : int;
  controller_exec : Stats.summary;
  release_jitter : float;
  release_latency : Stats.summary;
  cpu_utilization : float;
  max_stack_bytes : int;
  overruns : int;
  watchdog_bites : int;
}

type 'p result = {
  profile : profile;
  trace : (float * (string * float) list) list;
}

let is_kind k b m = (Model.spec_of m b).Block.kind = k

let run ?(preemptive = false) ?(substeps = 16) ?(button = fun _ -> false)
    ?(background_load = 0.0) ?watchdog ?(overrun_inject = fun _ -> 0)
    ?(wdog_suppress = fun _ -> false) ~mcu ~schedule ~controller ~plant
    ~advance ~angle_of ~observe ~encoder ~periods () =
  Obs.span "hil.run" @@ fun () ->
  let comp = Sim.compiled controller in
  let m = comp.Compile.model in
  let machine = Machine.create ~preemptive ~base_stack:96 mcu in
  let period = schedule.Target.base_period in
  (* the deployment timer settings come from the same expert system the
     generated HAL baked into Gpt_Init/TI1_Enable *)
  let timer = Timer_periph.create machine ~channel:0 in
  (match Expert.solve_timer_period mcu ~period with
  | Ok sol ->
      Timer_periph.configure timer ~prescaler:sol.Expert.prescaler
        ~modulo:sol.Expert.modulo
  | Error e -> invalid_arg ("Hil_cosim.run: " ^ e));
  let pwm = Pwm_periph.create machine ~channel:0 () in
  (try Pwm_periph.set_frequency pwm ~hz:20e3
   with Invalid_argument _ -> Pwm_periph.set_period_counts pwm 200);
  let qdec = if mcu.Mcu_db.has_qdec then Some (Qdec_periph.create machine ()) else None in
  (* locate the peripheral blocks of the controller model *)
  let find_kinds ks =
    List.filter (fun b -> List.exists (fun k -> is_kind k b m) ks) (Model.blocks m)
  in
  let qdec_blocks = find_kinds [ "PE_QuadDec"; "AR_Icu" ] in
  let btn_blocks = find_kinds [ "PE_BitIO_In"; "AR_Dio_In" ] in
  let pwm_blocks = find_kinds [ "PE_Pwm"; "AR_Pwm" ] in
  let group_cost =
    List.fold_left (fun acc (_, c) -> acc + c) 0 schedule.Target.group_cycle_map
  in
  let step_cost = schedule.Target.total_step_cycles + group_cost in
  let exec_samples = ref [] in
  let wdog =
    Option.map (fun timeout -> Wdog_periph.create machine ~timeout ()) watchdog
  in
  let period_ref = ref 0 in
  let run_step () =
    (* service the watchdog first, as the generated step's prologue does
       — unless the campaign scenario eats the service call *)
    if not (wdog_suppress (Machine.now machine)) then
      Option.iter Wdog_periph.refresh wdog;
    (* read the position register exactly as the generated code does *)
    List.iter
      (fun b ->
        let count =
          match qdec with
          | Some q -> Qdec_periph.read_position q
          | None ->
              Encoder.count_of_angle encoder ~theta:(angle_of plant) land 0xFFFF
        in
        Sim.override_output controller (b, 0) (Some (Value.of_int Dtype.Int32 count)))
      qdec_blocks;
    List.iter
      (fun b ->
        Sim.override_output controller (b, 0)
          (Some (Value.of_bool (button (Machine.now machine)))))
      btn_blocks;
    Sim.step controller;
    (* program the PWM duty register from the block's realised ratio *)
    List.iter
      (fun b ->
        let ratio = Value.to_float (Sim.value controller (b, 0)) in
        Pwm_periph.set_ratio16 pwm
          (int_of_float (Float.round (ratio *. 65535.0))))
      pwm_blocks;
    let exec_s = float_of_int step_cost /. mcu.Mcu_db.f_cpu_hz in
    Obs.record h_exec exec_s;
    exec_samples := exec_s :: !exec_samples
  in
  let ctrl_irq =
    Machine.register_irq machine ~name:"TI1" ~prio:2 ~handler:(fun () ->
        {
          Machine.jname = "model_step";
          cycles = step_cost + overrun_inject !period_ref;
          action = run_step;
          stack_bytes = schedule.Target.isr_stack_bytes;
        })
  in
  Timer_periph.on_overflow timer (fun () -> Machine.raise_irq machine ctrl_irq);
  Timer_periph.start timer;
  Option.iter Wdog_periph.enable wdog;
  (* optional competing load *)
  if background_load > 0.0 then begin
    let bg_period = Machine.cycles_of_time machine (period *. 0.73) in
    let bg_cost = int_of_float (background_load *. float_of_int bg_period) in
    let bg_irq =
      Machine.register_irq machine ~name:"bg" ~prio:5 ~handler:(fun () ->
          { Machine.jname = "bg"; cycles = bg_cost; action = (fun () -> ());
            stack_bytes = 48 })
    in
    let bg_timer = Timer_periph.create machine ~channel:1 in
    let prescaler = List.hd mcu.Mcu_db.timer.Mcu_db.prescalers in
    let max_modulo = 1 lsl mcu.Mcu_db.timer.Mcu_db.counter_bits in
    let rec fit p =
      if bg_period / p <= max_modulo then (p, bg_period / p)
      else
        match List.find_opt (fun q -> q > p) mcu.Mcu_db.timer.Mcu_db.prescalers with
        | Some q -> fit q
        | None -> (p, max_modulo)
    in
    let p, modulo = fit prescaler in
    Timer_periph.configure bg_timer ~prescaler:p ~modulo;
    Timer_periph.on_overflow bg_timer (fun () -> Machine.raise_irq machine bg_irq);
    Timer_periph.start bg_timer
  end;
  (* plant/peripheral coupling on a fine sub-grid *)
  let slice = period /. float_of_int substeps in
  let trace = ref [] in
  for k = 0 to periods - 1 do
    Obs.span_begin "hil.period";
    Obs.add c_periods 1;
    period_ref := k;
    for i = 0 to substeps - 1 do
      let t = (float_of_int k *. period) +. (float_of_int i *. slice) in
      Machine.run_until_time machine t;
      advance plant ~dt:slice ~duty:(Pwm_periph.duty_ratio pwm);
      (match qdec with
      | Some q ->
          Qdec_periph.set_true_count q
            (Encoder.count_of_angle encoder ~theta:(angle_of plant))
      | None -> ())
    done;
    Machine.run_until_time machine (float_of_int (k + 1) *. period);
    trace := (float_of_int (k + 1) *. period, observe plant) :: !trace;
    Obs.span_end ()
  done;
  let st = Machine.stats_of machine ctrl_irq in
  let to_s c = c /. mcu.Mcu_db.f_cpu_hz in
  let releases = List.map to_s st.Machine.response_cycles in
  List.iter (Obs.record h_release) releases;
  Obs.add c_overruns st.Machine.overruns;
  Obs.add c_wdog_bites
    (match wdog with Some w -> Wdog_periph.bites w | None -> 0);
  let summary_or_zero l =
    match l with
    | [] ->
        { Stats.n = 0; mean = 0.0; stdev = 0.0; min = 0.0; max = 0.0;
          p50 = 0.0; p95 = 0.0; p99 = 0.0 }
    | _ -> Stats.summarize l
  in
  {
    profile =
      {
        periods;
        controller_exec = summary_or_zero !exec_samples;
        release_jitter = Stats.jitter releases;
        release_latency = summary_or_zero releases;
        cpu_utilization = Machine.utilization machine;
        max_stack_bytes = Machine.max_stack_bytes machine;
        overruns = st.Machine.overruns;
        watchdog_bites =
          (match wdog with Some w -> Wdog_periph.bites w | None -> 0);
      };
    trace = List.rev !trace;
  }

let servo_run ?preemptive ?button ?background_load ?watchdog ?overrun_inject
    ?wdog_suppress ~built_mcu ~schedule ~controller ~motor ~load ~encoder
    ~periods () =
  let stage = Power_stage.ideal ~u_supply:motor.Dc_motor.u_max in
  let state = ref Dc_motor.initial in
  let time = ref 0.0 in
  let advance (_ : Dc_motor.state) ~dt ~duty =
    let u = Power_stage.output_voltage stage ~duty ~i:!state.Dc_motor.i in
    let tau = Load_profile.torque load ~time:!time ~w:!state.Dc_motor.w in
    state := Dc_motor.step motor ~u ~tau_load:tau ~h:dt !state;
    time := !time +. dt
  in
  let r =
    run ?preemptive ?button ?background_load ?watchdog ?overrun_inject
      ?wdog_suppress ~mcu:built_mcu ~schedule ~controller
      ~plant:!state
      ~advance:(fun _ ~dt ~duty -> advance !state ~dt ~duty)
      ~angle_of:(fun _ -> !state.Dc_motor.theta)
      ~observe:(fun _ ->
        [
          ("speed", !state.Dc_motor.w);
          ("theta", !state.Dc_motor.theta);
          ("current", !state.Dc_motor.i);
        ])
      ~encoder ~periods ()
  in
  { profile = r.profile; trace = r.trace }
