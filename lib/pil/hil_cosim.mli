(** Hardware-in-the-loop stage (§6).

    "More precise results can be obtained by the simulation of the
    complete hardware of the control unit in the loop with a simulator of
    the plant (so called hardware in the loop simulation — HIL) … the
    final version of the code is used."

    Unlike {!Pil_cosim}, nothing is redirected: the deployment build's
    execution model runs on the virtual MCU with its real peripherals —
    the TimerInt bean's {!Timer_periph} raises the periodic interrupt,
    the controller reads the {!Qdec_periph} position register and the
    {!Gpio_periph} button pin, and writes the {!Pwm_periph} duty register,
    whose ratio drives the plant continuously between interrupts. The
    remaining gap to silicon is the block-level cycle cost model.

    The rig is shaped for the paper's servo case study (PWM out,
    quadrature + button in); the coupling callbacks keep the plant model
    generic. *)

type profile = {
  periods : int;
  controller_exec : Stats.summary;  (** seconds per step *)
  release_jitter : float;
      (** peak-to-peak variation of the control ISR release, s *)
  release_latency : Stats.summary;  (** timer tick to ISR start *)
  cpu_utilization : float;
  max_stack_bytes : int;
  overruns : int;  (** timer ticks that found the previous step running *)
  watchdog_bites : int;
      (** expiries of the optional watchdog (0 when none is armed) *)
}

type 'p result = {
  profile : profile;
  trace : (float * (string * float) list) list;
}

val run :
  ?preemptive:bool ->
  ?substeps:int ->
  ?button:(float -> bool) ->
  ?background_load:float ->
  ?watchdog:float ->
  ?overrun_inject:(int -> int) ->
  ?wdog_suppress:(float -> bool) ->
  mcu:Mcu_db.t ->
  schedule:Target.schedule ->
  controller:Sim.t ->
  plant:'p ->
  advance:('p -> dt:float -> duty:float -> unit) ->
  angle_of:('p -> float) ->
  observe:('p -> (string * float) list) ->
  encoder:Encoder.t ->
  periods:int ->
  unit ->
  'p result
(** [substeps] (default 16) is the plant/peripheral coupling granularity
    within one control period. [background_load] (default 0) adds a
    competing background ISR consuming that fraction of the CPU, for
    stress runs. [watchdog] arms a {!Wdog_periph} with that timeout; the
    control step refreshes it exactly as generated code calls
    [WD1_Clear], so starved steps show up as bites. [overrun_inject]
    returns extra CPU cycles charged to the given period's control step;
    [wdog_suppress] makes the step skip the watchdog service at the
    given time — both are fault-injection taps (default inactive).
    @raise Invalid_argument when the timer bean's period is unattainable
    on the MCU. *)

val servo_run :
  ?preemptive:bool ->
  ?button:(float -> bool) ->
  ?background_load:float ->
  ?watchdog:float ->
  ?overrun_inject:(int -> int) ->
  ?wdog_suppress:(float -> bool) ->
  built_mcu:Mcu_db.t ->
  schedule:Target.schedule ->
  controller:Sim.t ->
  motor:Dc_motor.params ->
  load:Load_profile.t ->
  encoder:Encoder.t ->
  periods:int ->
  unit ->
  Dc_motor.state result
(** The case-study instantiation: DC motor + ideal power stage. *)
