(* co-simulation metrics: the same quantities the paper's PIL stage
   measures on the target, as process-wide histograms/counters *)
let h_latency = Obs.hist "pil.response_latency_s"
let h_exec = Obs.hist "pil.exec_s"
let c_periods = Obs.counter "pil.periods"
let c_overruns = Obs.counter "pil.overruns"
let c_frame_holds = Obs.counter "pil.frame_holds"

type 'p plant_driver = {
  read_sensors : 'p -> time:float -> int array;
  apply_actuators : 'p -> int array -> unit;
  advance : 'p -> dt:float -> unit;
  observe : 'p -> (string * float) list;
}

type profile = {
  periods : int;
  controller_exec : Stats.summary;
  response_latency : Stats.summary;
  step_start_jitter : float;
  comm_bytes_per_period : int;
  comm_time_per_period : float;
  cpu_utilization : float;
  max_stack_bytes : int;
  overruns : int;
  crc_errors : int;
  sci_rx_overruns : int;
}

type result = {
  profile : profile;
  trace : (float * (string * float) list) list;
}

let wire_bytes_per_period ~schedule =
  let ns = List.length schedule.Target.sensor_slots in
  let na = List.length schedule.Target.actuator_slots in
  let pkt n =
    Packet.wire_length
      { Packet.ptype = 1; seq = 0; payload = List.init (2 * n) (fun _ -> 0) }
  in
  pkt ns + pkt na

(* SplitMix64 for deterministic line-error injection. *)
let splitmix state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let run ?(baud = 115200) ?(rx_isr_cycles = 80) ?(tx_isr_cycles = 40)
    ?(preemptive = false) ?(error_rate = 0.0) ?(seed = 1) ?(dup_frames = false)
    ?(overrun_inject = fun _ -> 0) ~mcu ~schedule ~controller ~plant ~driver
    ~periods () =
  Obs.span "pil.run" @@ fun () ->
  let comp = Sim.compiled controller in
  let m = comp.Compile.model in
  let machine = Machine.create ~preemptive ~base_stack:96 mcu in
  let sci = Sci_periph.create machine ~baud () in
  let period = schedule.Target.base_period in
  let period_cycles = Machine.cycles_of_time machine period in
  let byte_time = Sci_periph.byte_seconds sci in
  let wire_bytes = wire_bytes_per_period ~schedule in
  let comm_time = float_of_int wire_bytes *. byte_time in
  if comm_time > 0.95 *. period then
    invalid_arg
      (Printf.sprintf
         "Pil_cosim.run: %d wire bytes take %.3g ms but the control period is \
          %.3g ms; minimum feasible period at %d baud is %.3g ms"
         wire_bytes (comm_time *. 1e3) (period *. 1e3) baud
         (comm_time /. 0.95 *. 1e3));
  let group_cost =
    List.fold_left (fun acc (_, c) -> acc + c) 0 schedule.Target.group_cycle_map
  in
  let step_cost = schedule.Target.total_step_cycles + group_cost in
  (* --- target side --- *)
  let sensor_kind b = (Model.spec_of m b).Block.kind in
  let apply_sensors payload =
    let values = ref payload in
    List.iter
      (fun (b, _slot) ->
        let v, rest = Packet.take_u16 !values in
        values := rest;
        let value =
          match sensor_kind b with
          | "PE_Adc" | "AR_Adc" -> Value.of_int Dtype.Uint16 v
          | "PE_QuadDec" | "AR_Icu" -> Value.of_int Dtype.Int32 v
          | "PE_BitIO_In" | "AR_Dio_In" -> Value.of_bool (v <> 0)
          | k -> failwith ("unexpected sensor block kind " ^ k)
        in
        Sim.override_output controller (b, 0) (Some value))
      schedule.Target.sensor_slots
  in
  let read_actuators () =
    List.map
      (fun (b, _slot) ->
        match sensor_kind b with
        | "PE_Pwm" | "AR_Pwm" ->
            let ratio = Value.to_float (Sim.value controller (b, 0)) in
            int_of_float (Float.round (ratio *. 65535.0)) land 0xFFFF
        | "PE_BitIO_Out" | "AR_Dio_Out" ->
            if Value.to_bool (Sim.value controller (b, 0)) then 1 else 0
        | "PE_Dac" ->
            (* the DAC block outputs volts; ship the raw code instead *)
            (match Model.driver m (b, 0) with
            | Some src -> Value.to_int (Sim.value controller src) land 0xFFFF
            | None -> 0)
        | k -> failwith ("unexpected actuator block kind " ^ k))
      schedule.Target.actuator_slots
  in
  (* host-side state *)
  let pending_actuators = ref None in
  let reply_complete_cycle = ref None in
  let host_framer =
    Framer.create ~on_packet:(fun pkt ->
        if pkt.Packet.ptype = Packet.ptype_actuator then begin
          let rec take acc rest n =
            if n = 0 then List.rev acc
            else
              let v, rest = Packet.take_u16 rest in
              take (v :: acc) rest (n - 1)
          in
          let n = List.length schedule.Target.actuator_slots in
          pending_actuators := Some (Array.of_list (take [] pkt.Packet.payload n));
          reply_complete_cycle := Some (Machine.now_cycles machine)
        end)
  in
  Sci_periph.on_tx_byte sci (fun b -> Framer.feed host_framer b);
  (* target framer and step execution *)
  let exec_samples = ref [] and start_offsets = ref [] in
  let latencies = ref [] in
  let period_index = ref 0 in
  let target_pending = ref None in
  (* the target accepts one step per sequence number: a frame the line
     duplicated (or the host retransmitted) must not step the
     controller twice *)
  let last_rx_seq = ref (-1) in
  let target_framer =
    Framer.create ~on_packet:(fun pkt ->
        if
          pkt.Packet.ptype = Packet.ptype_sensor
          && pkt.Packet.seq <> !last_rx_seq
        then begin
          last_rx_seq := pkt.Packet.seq;
          target_pending := Some pkt
        end)
  in
  let rx_irq =
  let do_step pkt =
    apply_sensors pkt.Packet.payload;
    Sim.step controller;
    let acts = read_actuators () in
    let payload =
      Packet.finish_payload
        (List.fold_left (fun acc v -> Packet.push_u16 v acc) [] acts)
    in
    let reply =
      { Packet.ptype = Packet.ptype_actuator; seq = pkt.Packet.seq; payload }
    in
    ignore (Sci_periph.send_bytes sci (Packet.encode reply))
  in
  let handler () =
    let byte = Sci_periph.read_data sci in
    Framer.feed target_framer byte;
    match !target_pending with
    | Some pkt ->
        target_pending := None;
        let start = Machine.now_cycles machine in
        start_offsets :=
          float_of_int (start - (!period_index * period_cycles))
          /. mcu.Mcu_db.f_cpu_hz
          :: !start_offsets;
        (* an injected overrun models a transient stall (cache miss
           burst, runaway higher-priority work) stretching this period's
           step *)
        let stall = overrun_inject !period_index in
        let exec_s = float_of_int (step_cost + stall) /. mcu.Mcu_db.f_cpu_hz in
        Obs.record h_exec exec_s;
        exec_samples := exec_s :: !exec_samples;
        {
          Machine.jname = "pil_step";
          cycles = rx_isr_cycles + step_cost + stall + tx_isr_cycles;
          action = (fun () -> do_step pkt);
          stack_bytes = schedule.Target.isr_stack_bytes;
        }
    | None ->
        {
          Machine.jname = "sci_rx";
          cycles = rx_isr_cycles;
          action = (fun () -> ());
          stack_bytes = 32;
        }
  in
    Machine.register_irq machine ~name:"SCI_RX" ~prio:2 ~handler
  in
  Sci_periph.on_rx sci (fun _ -> Machine.raise_irq machine rx_irq);
  (* --- co-simulation loop --- *)
  let rng = ref (Int64.of_int seed) in
  let corrupt b =
    if error_rate > 0.0 then begin
      let u =
        Int64.to_float (Int64.shift_right_logical (splitmix rng) 11)
        /. 9007199254740992.0
      in
      if u < error_rate then b lxor 0x55 else b
    end
    else b
  in
  let byte_cycles = Sci_periph.byte_cycles sci in
  let overruns = ref 0 in
  let trace = ref [] in
  let last_actuators =
    ref (Array.make (List.length schedule.Target.actuator_slots) 0)
  in
  for k = 0 to periods - 1 do
    Obs.span_begin "pil.period";
    Obs.add c_periods 1;
    period_index := k;
    let t_k = k * period_cycles in
    Machine.advance_to machine ~cycle:t_k;
    reply_complete_cycle := None;
    (* compose and "transmit" the sensor packet: byte i arrives one frame
       time after it started on the wire *)
    let sensors = driver.read_sensors plant ~time:(Machine.now machine) in
    let payload =
      Packet.finish_payload
        (Array.fold_left (fun acc v -> Packet.push_u16 v acc) [] sensors)
    in
    let pkt = { Packet.ptype = Packet.ptype_sensor; seq = k land 0xFF; payload } in
    let wire = Packet.encode pkt in
    let wire = if dup_frames then wire @ wire else wire in
    List.iteri
      (fun i b ->
        let b = corrupt b in
        Machine.schedule_at machine ~cycle:(t_k + (i * byte_cycles)) (fun () ->
            Sci_periph.deliver_byte sci b))
      wire;
    (* let the period elapse on the target *)
    Machine.advance_to machine ~cycle:(t_k + period_cycles);
    (match !pending_actuators with
    | Some acts ->
        last_actuators := acts;
        pending_actuators := None;
        (match !reply_complete_cycle with
        | Some c ->
            let lat = float_of_int (c - t_k) /. mcu.Mcu_db.f_cpu_hz in
            Obs.record h_latency lat;
            latencies := lat :: !latencies
        | None -> ())
    | None ->
        (* no reply this period: the host holds the last actuator frame *)
        incr overruns;
        Obs.add c_overruns 1;
        Obs.add c_frame_holds 1);
    driver.apply_actuators plant !last_actuators;
    driver.advance plant ~dt:period;
    trace := (float_of_int (k + 1) *. period, driver.observe plant) :: !trace;
    Obs.span_end ()
  done;
  let summary_or_zero l =
    match l with
    | [] ->
        {
          Stats.n = 0; mean = 0.0; stdev = 0.0; min = 0.0; max = 0.0;
          p50 = 0.0; p95 = 0.0; p99 = 0.0;
        }
    | _ -> Stats.summarize l
  in
  {
    profile =
      {
        periods;
        controller_exec = summary_or_zero !exec_samples;
        response_latency = summary_or_zero !latencies;
        step_start_jitter = Stats.jitter !start_offsets;
        comm_bytes_per_period = wire_bytes;
        comm_time_per_period = comm_time;
        cpu_utilization = Machine.utilization machine;
        max_stack_bytes = Machine.max_stack_bytes machine;
        overruns = !overruns;
        crc_errors = Framer.crc_errors target_framer;
        sci_rx_overruns = Sci_periph.rx_overruns sci;
      };
    trace = List.rev !trace;
  }
