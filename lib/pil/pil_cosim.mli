(** Processor-in-the-loop co-simulation (Fig 6.2).

    The host PC ("simulator PC" running the plant model generated for the
    xPC target) and the development board exchange one packet pair per
    control period over the RS-232 line: sensors down, actuators back.
    Here the development board is the {!Machine} virtual MCU executing
    the controller's generated schedule — behaviourally by stepping the
    very same compiled model through the MIL engine with peripheral
    outputs overridden from the communication buffer (what PEERT_PIL's
    generated code does), and temporally by charging the generated code's
    cycle costs, the per-byte ISR costs and the line's baud rate.

    Everything the paper says PIL reveals is measured: "the execution
    times of the implemented controller code, interrupts response times,
    sampling jitters, memory and stack requirements" (§6). *)

(** How the host side couples the plant to the link. Sensor and actuator
    arrays are indexed by the PIL buffer slots of the {!Target.schedule}
    (16-bit raw values, exactly what the wire carries). *)
type 'p plant_driver = {
  read_sensors : 'p -> time:float -> int array;
  apply_actuators : 'p -> int array -> unit;
  advance : 'p -> dt:float -> unit;
  observe : 'p -> (string * float) list;
      (** named probes recorded once per control period *)
}

type profile = {
  periods : int;
  controller_exec : Stats.summary;  (** seconds per step, on the target *)
  response_latency : Stats.summary;
      (** period start to actuator-reply completion, seconds *)
  step_start_jitter : float;
      (** peak-to-peak variation of step start within the period, s *)
  comm_bytes_per_period : int;
  comm_time_per_period : float;  (** wire time of both packets, seconds *)
  cpu_utilization : float;
  max_stack_bytes : int;
  overruns : int;  (** periods whose reply missed the deadline *)
  crc_errors : int;
  sci_rx_overruns : int;
}

type result = {
  profile : profile;
  trace : (float * (string * float) list) list;
      (** per-period host observations, oldest first *)
}

val run :
  ?baud:int ->
  ?rx_isr_cycles:int ->
  ?tx_isr_cycles:int ->
  ?preemptive:bool ->
  ?error_rate:float ->
  ?seed:int ->
  ?dup_frames:bool ->
  ?overrun_inject:(int -> int) ->
  mcu:Mcu_db.t ->
  schedule:Target.schedule ->
  controller:Sim.t ->
  plant:'p ->
  driver:'p plant_driver ->
  periods:int ->
  unit ->
  result
(** Run [periods] control periods. [baud] defaults to 115200 (the
    paper's RS-232 link; sweep it for experiment E5). [error_rate] is a
    per-byte corruption probability on the line (deterministic PRNG with
    [seed]), exercising the CRC path. [dup_frames] transmits every
    sensor frame twice, exercising the target's sequence-number
    deduplication (a duplicated frame must not step the controller
    twice). [preemptive] configures the interrupt controller (E7
    ablation). [overrun_inject] returns extra CPU cycles charged to the
    given period's control step (fault-injection campaigns use it to
    provoke deadline misses; default none).
    @raise Invalid_argument when a period cannot even carry the two
    packets at the given baud rate (the feasibility boundary — the error
    message carries the minimum period). *)

val wire_bytes_per_period : schedule:Target.schedule -> int
(** Size of one sensor plus one actuator packet before stuffing. *)
