let fmt_time_ns ns =
  if ns >= 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let fmt_time_s s = fmt_time_ns (s *. 1e9)

type agg = {
  mutable calls : int;
  mutable total_ns : float;
  mutable max_ns : float;
  mutable count : int;
}

let flame_summary spans =
  if Array.length spans = 0 then "no spans recorded\n"
  else begin
    let tbl : (int * string, agg) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    (* first-seen order, by completion time, gives a stable listing *)
    Array.iter
      (fun sp ->
        let key = (sp.Obs.sp_depth, sp.Obs.sp_name) in
        let a =
          match Hashtbl.find_opt tbl key with
          | Some a -> a
          | None ->
              let a = { calls = 0; total_ns = 0.0; max_ns = 0.0; count = 0 } in
              Hashtbl.replace tbl key a;
              order := key :: !order;
              a
        in
        a.calls <- a.calls + 1;
        a.total_ns <- a.total_ns +. sp.Obs.sp_dur_ns;
        if sp.Obs.sp_dur_ns > a.max_ns then a.max_ns <- sp.Obs.sp_dur_ns;
        a.count <- a.count + sp.Obs.sp_count)
      spans;
    let root_total =
      Array.fold_left
        (fun acc sp ->
          if sp.Obs.sp_depth = 0 then acc +. sp.Obs.sp_dur_ns else acc)
        0.0 spans
    in
    let keys =
      List.sort
        (fun (d1, n1) (d2, n2) ->
          if d1 <> d2 then compare d1 d2
          else
            let t k n = (Hashtbl.find tbl (k, n)).total_ns in
            compare (t d2 n2) (t d1 n1))
        (List.rev !order)
    in
    let b = Buffer.create 512 in
    Buffer.add_string b
      (Printf.sprintf "%-40s %10s %12s %12s %12s %7s\n" "span (by depth)"
         "calls" "total" "mean" "max" "share");
    List.iter
      (fun (d, name) ->
        let a = Hashtbl.find tbl (d, name) in
        let label = String.make (2 * d) ' ' ^ name in
        let share =
          if root_total > 0.0 then
            Printf.sprintf "%5.1f %%" (100.0 *. a.total_ns /. root_total)
          else "-"
        in
        Buffer.add_string b
          (Printf.sprintf "%-40s %10d %12s %12s %12s %7s\n" label a.calls
             (fmt_time_ns a.total_ns)
             (fmt_time_ns (a.total_ns /. float_of_int a.calls))
             (fmt_time_ns a.max_ns) share))
      keys;
    Buffer.contents b
  end

let metrics_table (snap : Obs.snapshot) =
  let b = Buffer.create 512 in
  (* registered-but-untouched instruments are noise in a run report *)
  let counters = List.filter (fun (_, v) -> v <> 0) snap.Obs.counters in
  let hists =
    List.filter (fun (_, hs) -> hs.Obs.hs_count > 0) snap.Obs.hists
  in
  let snap = { snap with Obs.counters; hists } in
  if snap.Obs.counters <> [] then begin
    Buffer.add_string b "counters:\n";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf "  %-36s %d\n" k v))
      snap.Obs.counters
  end;
  if snap.Obs.gauges <> [] then begin
    Buffer.add_string b "gauges:\n";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf "  %-36s %g\n" k v))
      snap.Obs.gauges
  end;
  if snap.Obs.hists <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "histograms:\n  %-34s %8s %10s %10s %10s %10s\n" ""
         "count" "p50" "p95" "p99" "max");
    List.iter
      (fun (k, hs) ->
        Buffer.add_string b
          (Printf.sprintf "  %-34s %8d %10s %10s %10s %10s\n" k
             hs.Obs.hs_count (fmt_time_s hs.Obs.hs_p50)
             (fmt_time_s hs.Obs.hs_p95) (fmt_time_s hs.Obs.hs_p99)
             (fmt_time_s hs.Obs.hs_max)))
      snap.Obs.hists
  end;
  if Buffer.length b = 0 then "no metrics recorded\n" else Buffer.contents b

(* self-profiling view: the profile.* histograms recorded by the
   per-pass/per-phase timing hooks, with aggregate totals — the
   --profile rendering *)
let profile_table (snap : Obs.snapshot) =
  let prefix = "profile." in
  let is_profile k =
    String.length k > String.length prefix
    && String.sub k 0 (String.length prefix) = prefix
  in
  let rows =
    List.filter (fun (k, hs) -> is_profile k && hs.Obs.hs_count > 0)
      snap.Obs.hists
  in
  if rows = [] then "no profile samples recorded (is --profile on?)\n"
  else begin
    let b = Buffer.create 512 in
    Buffer.add_string b
      (Printf.sprintf "%-36s %8s %12s %12s %12s\n" "pass" "calls" "total"
         "mean" "max");
    List.iter
      (fun (k, hs) ->
        let name = String.sub k (String.length prefix)
            (String.length k - String.length prefix)
        in
        let total = hs.Obs.hs_mean *. float_of_int hs.Obs.hs_count in
        Buffer.add_string b
          (Printf.sprintf "%-36s %8d %12s %12s %12s\n" name hs.Obs.hs_count
             (fmt_time_s total) (fmt_time_s hs.Obs.hs_mean)
             (fmt_time_s hs.Obs.hs_max)))
      rows;
    Buffer.contents b
  end
