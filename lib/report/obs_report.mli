(** Human-readable rendering of {!Obs} data: the ASCII flame summary of
    recorded spans and a metrics table for snapshots — the terminal
    counterpart of the Chrome-trace JSON export. *)

val flame_summary : Obs.span array -> string
(** Aggregate spans by (nesting depth, name): calls, total/mean/max
    time and share of the outermost total, indented by depth. *)

val metrics_table : Obs.snapshot -> string
(** Counters, gauges and histogram summaries (latency columns rendered
    in engineering units). *)

val profile_table : Obs.snapshot -> string
(** The [profile.*] histograms (per-pass / per-phase self-timing hooks)
    as a calls/total/mean/max table — the [--profile] rendering. *)
