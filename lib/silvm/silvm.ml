(** The software-in-the-loop virtual machine, under one roof:
    {!Silvm.Value} (C scalar arithmetic), {!Silvm.Interp} (C AST
    interpreter), {!Silvm.Compiled} (closure compiler), {!Silvm.App}
    (generated-application driver) and {!Silvm.Diff} (MIL<->SIL
    differential harness). *)

module Value = Silvm_value
module Interp = Silvm_interp
module Compiled = Silvm_compile
module App = Silvm_app
module Diff = Silvm_diff
