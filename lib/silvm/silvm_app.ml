(* Load a PEERT-generated application into the interpreter and drive it.

   The PIL variant of the generated code is the natural SIL subject:
   its peripheral reads and writes are redirected to the
   [pil_sensor_buf]/[pil_actuator_buf] exchange buffers (§6), which
   become the stimulus/observation ports of the virtual machine -- the
   same role the RS-232 link plays in a real PIL run, without the
   target hardware. *)

type t = {
  interp : Silvm_interp.t;
  name : string;
  comp : Compile.t;
  arts : Target.artifacts;
  events : (int * string) list;
      (** rate divisor, group function to fire after the step (bean
          event ISRs; fired at the event block's rate, mirroring the
          immediate-and-atomic group execution of the MIL engine) *)
  mutable steps : int;
  mutable time : float;
}

let sanitized_field b p m =
  Printf.sprintf "%s_o%d" (Blockgen.sanitize (Model.block_name m b)) p

let divisor comp b =
  match comp.Compile.sample.(Model.blk_index b) with
  | Sample_time.R_discrete { period; _ } ->
      Some (int_of_float (Float.round (period /. comp.Compile.base_dt)))
  | _ -> None

let create ?(mode = Blockgen.Pil) ?(opt = false) ~name ~project comp =
  let arts = Target.generate ~mode ~opt ~name ~project comp in
  let interp = Silvm_interp.create () in
  Silvm_interp.add_unit interp arts.Target.model_h;
  Silvm_interp.add_unit interp arts.Target.model_c;
  let m = comp.Compile.model in
  (* free-running counter beans read the clock through an external *)
  let app =
    {
      interp;
      name;
      comp;
      arts;
      events = [];
      steps = 0;
      time = 0.0;
    }
  in
  List.iter
    (fun b ->
      let spec = Model.spec_of m b in
      if String.equal spec.Block.kind "PE_FreeCntr" then
        match
          ( List.assoc_opt "bean" spec.Block.params,
            List.assoc_opt "tick" spec.Block.params )
        with
        | Some (Param.String bean), Some (Param.Float tick) ->
            Silvm_interp.register_external interp (bean ^ "_GetCounterValue")
              (fun _ ->
                let count =
                  int_of_float (Float.floor (app.time /. tick)) land 0xFFFF
                in
                Silvm_value.of_int
                  { Silvm_value.bits = 16; signed = false }
                  count)
        | _ -> ())
    (Model.blocks m);
  (* bean events wired to function-call groups: the generated ISR body
     is a call to the group function *)
  let events =
    List.concat_map
      (fun b ->
        let spec = Model.spec_of m b in
        List.init (Array.length spec.Block.event_outs) (fun i -> i)
        |> List.filter_map (fun i ->
               match Model.event_target m (b, i) with
               | Some g ->
                   let fn =
                     Printf.sprintf "%s_%s" name
                       (Blockgen.sanitize (Model.group_name m g))
                   in
                   if Silvm_interp.has_func interp fn then
                     Option.map (fun d -> (d, fn)) (divisor comp b)
                   else None
               | None -> None))
      (Model.blocks m)
  in
  { app with events }

let initialize app =
  app.steps <- 0;
  app.time <- 0.0;
  ignore (Silvm_interp.call app.interp (app.name ^ "_initialize") [])

(* one base-rate step: the periodic part, then the ISR groups of every
   bean event that fired in this period *)
let step app =
  ignore (Silvm_interp.call app.interp (app.name ^ "_step") []);
  List.iter
    (fun (d, fn) ->
      if app.steps mod d = 0 then ignore (Silvm_interp.call app.interp fn []))
    app.events;
  app.steps <- app.steps + 1;
  app.time <- app.time +. app.comp.Compile.base_dt

let set_sensor app slot v =
  Silvm_interp.write app.interp
    (C_ast.Index (C_ast.Var "pil_sensor_buf", C_ast.Int_lit slot))
    (Silvm_value.of_int { Silvm_value.bits = 16; signed = false } v)

let actuator app slot =
  Silvm_value.to_int
    (Silvm_interp.read app.interp
       (C_ast.Index (C_ast.Var "pil_actuator_buf", C_ast.Int_lit slot)))

let set_input app i x =
  Silvm_interp.write app.interp
    (C_ast.Field (C_ast.Var (app.name ^ "_U"), Printf.sprintf "in%d" i))
    (Silvm_value.VF x)

(* the block-I/O structure field carrying a block output signal *)
let signal app (b, p) =
  Silvm_interp.read app.interp
    (C_ast.Field
       ( C_ast.Var (app.name ^ "_B"),
         sanitized_field b p app.comp.Compile.model ))

let schedule app = app.arts.Target.schedule
let stmts_executed app = Silvm_interp.stmts_executed app.interp
