(* Load a PEERT-generated application and drive it.

   The PIL variant of the generated code is the natural SIL subject:
   its peripheral reads and writes are redirected to the
   [pil_sensor_buf]/[pil_actuator_buf] exchange buffers (§6), which
   become the stimulus/observation ports of the virtual machine -- the
   same role the RS-232 link plays in a real PIL run, without the
   target hardware.

   Two execution backends share this driver: the C-AST interpreter
   ({!Silvm_interp}) and the closure compiler ({!Silvm_compile}).
   The compiled engine is the default -- it is bit-exact against the
   interpreter on the whole covered subset (test_silvm_compile.ml
   holds it to every-output-every-step equality) and one to two
   orders of magnitude faster, which is what campaigns and fuzz
   loops feel. *)

type engine = [ `Interp | `Compiled ]

type backend =
  | Interp of Silvm_interp.t
  | Compiled of {
      code : Silvm_compile.code;
      st : Silvm_compile.st;
      readers : (string, Silvm_compile.st -> Silvm_value.t) Hashtbl.t;
          (** per-field read closures, compiled once on first use *)
    }

type t = {
  backend : backend;
  name : string;
  comp : Compile.t;
  arts : Target.artifacts;
  events : (int * string) list;
      (** rate divisor, group function to fire after the step (bean
          event ISRs; fired at the event block's rate, mirroring the
          immediate-and-atomic group execution of the MIL engine) *)
  mutable steps : int;
  mutable time : float;
}

type trace =
  (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array2.t

let sanitized_field b p m =
  Printf.sprintf "%s_o%d" (Blockgen.sanitize (Model.block_name m b)) p

let divisor comp b =
  match comp.Compile.sample.(Model.blk_index b) with
  | Sample_time.R_discrete { period; _ } ->
      Some (int_of_float (Float.round (period /. comp.Compile.base_dt)))
  | _ -> None

let engine app = match app.backend with Interp _ -> `Interp | Compiled _ -> `Compiled

let has_func app fn =
  match app.backend with
  | Interp interp -> Silvm_interp.has_func interp fn
  | Compiled { code; _ } -> Silvm_compile.has_func code fn

let register_external app fn f =
  match app.backend with
  | Interp interp -> Silvm_interp.register_external interp fn f
  | Compiled { st; _ } -> Silvm_compile.register_external st fn f

let call app fn args =
  match app.backend with
  | Interp interp -> ignore (Silvm_interp.call interp fn args)
  | Compiled { code; st; _ } -> ignore (Silvm_compile.call code st fn args)

(* engine-level live metrics *)
let c_sil_steps = Obs.counter "silvm.steps"

let create ?(mode = Blockgen.Pil) ?(opt = false) ?(engine = `Compiled) ~name
    ~project comp =
  let arts =
    if Obs.enabled () then begin
      let t0 = Obs.now_ns () in
      let arts = Target.generate ~mode ~opt ~name ~project comp in
      Obs.record_named "profile.silvm.codegen_s"
        ((Obs.now_ns () -. t0) *. 1e-9);
      arts
    end
    else Target.generate ~mode ~opt ~name ~project comp
  in
  let units = [ arts.Target.model_h; arts.Target.model_c ] in
  let backend =
    match engine with
    | `Interp ->
        let interp = Silvm_interp.create () in
        List.iter (Silvm_interp.add_unit interp) units;
        Interp interp
    | `Compiled ->
        (* the compiled code is immutable and content-hashed: repeated
           submissions of the same generated units (campaign shards,
           fuzz re-runs) share one compilation *)
        let code = Silvm_compile.compile_cached units in
        Compiled
          { code; st = Silvm_compile.instantiate code; readers = Hashtbl.create 32 }
  in
  let m = comp.Compile.model in
  let app =
    { backend; name; comp; arts; events = []; steps = 0; time = 0.0 }
  in
  (* free-running counter beans read the clock through an external *)
  List.iter
    (fun b ->
      let spec = Model.spec_of m b in
      if String.equal spec.Block.kind "PE_FreeCntr" then
        match
          ( List.assoc_opt "bean" spec.Block.params,
            List.assoc_opt "tick" spec.Block.params )
        with
        | Some (Param.String bean), Some (Param.Float tick) ->
            register_external app (bean ^ "_GetCounterValue") (fun _ ->
                let count =
                  int_of_float (Float.floor (app.time /. tick)) land 0xFFFF
                in
                Silvm_value.of_int
                  { Silvm_value.bits = 16; signed = false }
                  count)
        | _ -> ())
    (Model.blocks m);
  (* bean events wired to function-call groups: the generated ISR body
     is a call to the group function *)
  let events =
    List.concat_map
      (fun b ->
        let spec = Model.spec_of m b in
        List.init (Array.length spec.Block.event_outs) (fun i -> i)
        |> List.filter_map (fun i ->
               match Model.event_target m (b, i) with
               | Some g ->
                   let fn =
                     Printf.sprintf "%s_%s" name
                       (Blockgen.sanitize (Model.group_name m g))
                   in
                   if has_func app fn then
                     Option.map (fun d -> (d, fn)) (divisor comp b)
                   else None
               | None -> None))
      (Model.blocks m)
  in
  { app with events }

let initialize app =
  app.steps <- 0;
  app.time <- 0.0;
  call app (app.name ^ "_initialize") []

(* one base-rate step: the periodic part, then the ISR groups of every
   bean event that fired in this period *)
let step_fr fr app =
  (* supervision fuel point (cheap: one domain-local read when no
     token is installed) *)
  Cancel.poll ();
  (match fr with
  | Some r -> Flight.step_mark_r r ~step:app.steps ~time:app.time app.name
  | None -> ());
  call app (app.name ^ "_step") [];
  List.iter
    (fun (d, fn) -> if app.steps mod d = 0 then call app fn [])
    app.events;
  app.steps <- app.steps + 1;
  app.time <- app.time +. app.comp.Compile.base_dt;
  Obs.add c_sil_steps 1

let step app =
  step_fr (if Flight.enabled () then Some (Flight.recorder ()) else None) app

let set_sensor app slot v =
  match app.backend with
  | Interp interp ->
      Silvm_interp.write interp
        (C_ast.Index (C_ast.Var "pil_sensor_buf", C_ast.Int_lit slot))
        (Silvm_value.of_int { Silvm_value.bits = 16; signed = false } v)
  | Compiled { st; _ } -> Silvm_compile.set_sensor st slot v

let actuator app slot =
  match app.backend with
  | Interp interp ->
      Silvm_value.to_int
        (Silvm_interp.read interp
           (C_ast.Index (C_ast.Var "pil_actuator_buf", C_ast.Int_lit slot)))
  | Compiled { st; _ } -> Silvm_compile.actuator st slot

let read_field app fname field =
  let e = C_ast.Field (C_ast.Var fname, field) in
  match app.backend with
  | Interp interp -> Silvm_interp.read interp e
  | Compiled { code; st; readers } -> (
      (* signals are polled every step of a diff run: compile the read
         once, then it is a closure call *)
      match Hashtbl.find_opt readers field with
      | Some r -> r st
      | None ->
          let r = Silvm_compile.reader code e in
          Hashtbl.replace readers field r;
          r st)

let set_input app i x =
  let e =
    C_ast.Field (C_ast.Var (app.name ^ "_U"), Printf.sprintf "in%d" i)
  in
  match app.backend with
  | Interp interp -> Silvm_interp.write interp e (Silvm_value.VF x)
  | Compiled { code; st; _ } -> Silvm_compile.write code st e (Silvm_value.VF x)

(* the block-I/O structure field carrying a block output signal *)
let signal app (b, p) =
  read_field app (app.name ^ "_B")
    (sanitized_field b p app.comp.Compile.model)

let schedule app = app.arts.Target.schedule

let stmts_executed app =
  match app.backend with
  | Interp interp -> Silvm_interp.stmts_executed interp
  | Compiled _ -> 0

(* ---------------- batched execution ---------------- *)

let n_actuators app =
  match app.backend with
  | Compiled { code; _ } -> Silvm_compile.actuator_count code
  | Interp _ ->
      List.length app.arts.Target.schedule.Target.actuator_slots

let run_n_steps ?stimulus ?feedback app n =
  let n_act = n_actuators app in
  let t_batch = if Obs.enabled () then Obs.now_ns () else 0.0 in
  let trace =
    Bigarray.Array2.create Bigarray.int16_unsigned Bigarray.c_layout n
      (max 1 n_act)
  in
  Bigarray.Array2.fill trace 0;
  let row = Array.make (max 1 n_act) 0 in
  (* one recorder fetch for the whole batch, not one per step *)
  let fr = if Flight.enabled () then Some (Flight.recorder ()) else None in
  for k = 0 to n - 1 do
    (match stimulus with
    | None -> ()
    | Some f ->
        let sensors = f k in
        Array.iteri (fun slot v -> set_sensor app slot v) sensors);
    step_fr fr app;
    (match app.backend with
    | Compiled { st; _ } when n_act > 0 ->
        (* vectorized snapshot: blit the exchange buffer into row k *)
        Bigarray.Array1.blit
          (Silvm_compile.actuator_buf st)
          (Bigarray.Array2.slice_left trace k)
    | _ ->
        for slot = 0 to n_act - 1 do
          Bigarray.Array2.set trace k slot (actuator app slot)
        done);
    match feedback with
    | None -> ()
    | Some f ->
        for slot = 0 to n_act - 1 do
          row.(slot) <- Bigarray.Array2.get trace k slot
        done;
        f k row
  done;
  if Obs.enabled () then begin
    (* engine throughput, visible live in heartbeats / Prometheus *)
    let dt = (Obs.now_ns () -. t_batch) *. 1e-9 in
    Obs.record_named "silvm.batch_steps" (float_of_int n);
    if dt > 0.0 then
      Obs.set_gauge "silvm.steps_per_s" (float_of_int n /. dt)
  end;
  trace

(* first (step, slot) where two runs disagree; whole-row comparison is
   the vectorized common case (equal traces touch no per-port logic) *)
let compare_traces (a : trace) (b : trace) =
  let steps = min (Bigarray.Array2.dim1 a) (Bigarray.Array2.dim1 b) in
  let slots = min (Bigarray.Array2.dim2 a) (Bigarray.Array2.dim2 b) in
  let diff = ref None in
  (try
     for k = 0 to steps - 1 do
       for s = 0 to slots - 1 do
         if Bigarray.Array2.unsafe_get a k s <> Bigarray.Array2.unsafe_get b k s
         then (
           diff := Some (k, s);
           raise Exit)
       done
     done
   with Exit -> ());
  if Bigarray.Array2.dim1 a <> Bigarray.Array2.dim1 b && !diff = None then
    Some (steps, 0)
  else !diff
