(** A PEERT-generated application loaded into the SIL virtual machine.

    The PIL variant of the generated code is the natural SIL subject:
    its peripheral reads and writes are redirected to the
    [pil_sensor_buf]/[pil_actuator_buf] exchange buffers (§6), which
    become the stimulus/observation ports of the virtual machine — the
    same role the RS-232 link plays in a real PIL run, without the
    target hardware.

    Two engines share this driver: [`Interp] walks the C AST per step
    ({!Silvm_interp}); [`Compiled] (the default) runs the closures of
    {!Silvm_compile}, bit-exact against the interpreter and one to two
    orders of magnitude faster. *)

type t

type engine = [ `Interp | `Compiled ]

type trace =
  (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array2.t
(** actuator words, [steps × slots] *)

val create :
  ?mode:Blockgen.mode ->
  ?opt:bool ->
  ?engine:engine ->
  name:string ->
  project:Bean_project.t ->
  Compile.t ->
  t
(** Generate the application for [comp] (default PIL variant), load the
    whole translation set into the chosen engine (default [`Compiled];
    identical compiled units share one compilation through the
    content-hash cache) and wire up the free-running-counter bean
    externals. [opt] enables the MIR optimization passes on the model
    unit (default off); behaviour must be bit-exact either way — that is
    what {!Silvm_diff.run} checks.
    @raise Target.Codegen_error when generation fails. *)

val engine : t -> engine

val initialize : t -> unit
(** Call [<name>_initialize ()]. *)

val step : t -> unit
(** Call [<name>_step ()], then fire every event-wired group function
    whose rate divisor divides the step count (mirroring the
    immediate-and-atomic group execution of the MIL engine), and
    advance the application clock by one base period. *)

val run_n_steps :
  ?stimulus:(int -> int array) ->
  ?feedback:(int -> int array -> unit) ->
  t ->
  int ->
  trace
(** [run_n_steps app n] executes [n] base-rate steps and returns the
    actuator trace, snapshotted after each step (on the compiled engine
    the exchange buffer is blitted row-wise, no per-port boxing).
    [stimulus k] provides the sensor words before step [k];
    [feedback k row] observes the actuator words after step [k] — e.g.
    to advance a plant model driving the next stimulus. *)

val compare_traces : trace -> trace -> (int * int) option
(** first [(step, slot)] where two actuator traces disagree (a length
    mismatch reports the first missing step), [None] when identical *)

val set_sensor : t -> int -> int -> unit
(** [set_sensor app slot v] stores the raw 16-bit value [v] into
    [pil_sensor_buf[slot]]. *)

val actuator : t -> int -> int
(** [actuator app slot] reads [pil_actuator_buf[slot]]. *)

val set_input : t -> int -> float -> unit
(** [set_input app i x] writes the Inport field [<name>_U.in<i>]. *)

val signal : t -> Model.blk * int -> Silvm_value.t
(** [signal app (b, p)] reads the block-output field
    [<name>_B.<block>_o<p>] of the generated signals structure (cached
    compiled reader on the compiled engine). *)

val schedule : t -> Target.schedule
val stmts_executed : t -> int
(** interpreter statement counter; [0] on the compiled engine *)
