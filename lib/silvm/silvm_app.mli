(** A PEERT-generated application loaded into the SIL interpreter.

    The PIL variant of the generated code is the natural SIL subject:
    its peripheral reads and writes are redirected to the
    [pil_sensor_buf]/[pil_actuator_buf] exchange buffers (§6), which
    become the stimulus/observation ports of the virtual machine — the
    same role the RS-232 link plays in a real PIL run, without the
    target hardware. *)

type t

val create :
  ?mode:Blockgen.mode ->
  ?opt:bool ->
  name:string ->
  project:Bean_project.t ->
  Compile.t ->
  t
(** Generate the application for [comp] (default PIL variant), load the
    whole translation set into a fresh interpreter and wire up the
    free-running-counter bean externals. [opt] enables the MIR
    optimization passes on the model unit (default off); the interpreted
    behaviour must be bit-exact either way — that is what
    {!Silvm_diff.run} checks.
    @raise Target.Codegen_error when generation fails. *)

val initialize : t -> unit
(** Call [<name>_initialize ()]. *)

val step : t -> unit
(** Call [<name>_step ()], then fire every event-wired group function
    whose rate divisor divides the step count (mirroring the
    immediate-and-atomic group execution of the MIL engine), and
    advance the application clock by one base period. *)

val set_sensor : t -> int -> int -> unit
(** [set_sensor app slot v] stores the raw 16-bit value [v] into
    [pil_sensor_buf[slot]]. *)

val actuator : t -> int -> int
(** [actuator app slot] reads [pil_actuator_buf[slot]]. *)

val set_input : t -> int -> float -> unit
(** [set_input app i x] writes the Inport field [<name>_U.in<i>]. *)

val signal : t -> Model.blk * int -> Silvm_value.t
(** [signal app (b, p)] reads the block-output field
    [<name>_B.<block>_o<p>] of the generated signals structure. *)

val schedule : t -> Target.schedule
val stmts_executed : t -> int
