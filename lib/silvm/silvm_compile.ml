(* Closure-compile the generated application instead of interpreting it.

   The classic interpreter -> closure-compiler move: each function of
   the translation set is lifted into MIR ({!Mir_of_c}), and every MIR
   node is compiled ONCE into an OCaml closure over a flat mutable
   state; running a step is then just calling closures, with no AST
   dispatch, no hashtable lookups and no per-operation boxing on the
   typed fast path. Anything the lifter carries as an opaque node falls
   back to a structurally identical compiler over the C AST, so the
   covered subset is exactly the interpreter's.

   Bit-exactness contract: for every program {!Silvm_interp} executes,
   the compiled closures produce the same value in every storage cell
   after every call — including the wrap/sat/cast/quantize corners and
   the error cases (division by zero, shift range, loop fuel). The
   equivalence battery in test_silvm_compile.ml holds this to
   every-block-output-every-step equality against the interpreter and
   against the MIL engine.

   Representation choices that make the fast path fast:
   - integer cells hold the canonical value ({!Silvm_value}'s
     sign-extended / zero-extended int64) as a native [int] — every
     C type the generated code stores is <= 32 bits, so the canonical
     value always fits in OCaml's 63-bit int, and wrap-around at the
     operation width is a mask + conditional subtract;
   - float cells hold the double (binary32 cells store the value
     already rounded through {!to_f32}, exactly like the interpreter's
     [write_cell]);
   - expressions whose C type is statically known compile to unboxed
     [st -> int] / [st -> float] closures; the dynamic
     [st -> Silvm_value.t] tier remains for externals and for the
     ternaries whose arms disagree on type (the interpreter returns the
     arm's value unconverted, so the result type is data-dependent);
   - the PIL exchange buffers live in a [Bigarray] of unsigned 16-bit
     cells, so batched runs can snapshot actuator traces with no
     boxing and compare them vectorized. *)

open C_ast

type ity = Silvm_value.ity

let unsupported fmt =
  Printf.ksprintf (fun s -> raise (Silvm_interp.Unsupported s)) fmt

let fail fmt = Printf.ksprintf (fun s -> raise (Silvm_interp.Runtime_error s)) fmt
let verr fmt = Printf.ksprintf (fun s -> raise (Silvm_value.Error s)) fmt

type ba16 = (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(* ---------------- run-time state (the instance) ---------------- *)

type st = {
  ints : int array;  (** canonical values of the <= 32-bit integer cells *)
  floats : float array;
  sensor : ba16;  (** pil_sensor_buf *)
  actuator : ba16;  (** pil_actuator_buf *)
  externals : (string, Silvm_value.t list -> Silvm_value.t) Hashtbl.t;
  mutable fuel : int;
}

let loop_fuel_budget = Silvm_interp.loop_fuel_budget

(* ---------------- compile-time layout ---------------- *)

type fwidth = [ `F32 | `F64 ]

type storage =
  | Sint of ity * int  (** slot in [st.ints] *)
  | Sflt of fwidth * int  (** slot in [st.floats] *)
  | Sintarr of ity * int * int  (** base slot, length *)
  | Sfltarr of fwidth * int * int
  | Sstructv of (string * storage) array
  | Sxchg of [ `Sens | `Act ] * int  (** exchange buffer, length *)

type compiled_fn = {
  cf_name : string;
  cf_params : (st -> Silvm_value.t -> unit) array;
  cf_body : st -> unit;
  cf_ret : (Silvm_value.t -> Silvm_value.t) option;  (** [None] = void *)
}

(* a function whose body uses something outside the compiled subset
   (e.g. the 64-bit locals of the emitted pe_* helper bodies, which are
   intrinsics at every call site and therefore never invoked) fails
   lazily: the error only surfaces if the function is actually called *)
type fn_slot = Fn_ok of compiled_fn | Fn_fail of string

type code = {
  typedefs : (string, cty) Hashtbl.t;
  structs : (string, (cty * string) list) Hashtbl.t;
  globals : (string, storage) Hashtbl.t;
  macros : (string, Silvm_value.t) Hashtbl.t;
  srcfns : (string, func) Hashtbl.t;
  fns : (string, fn_slot) Hashtbl.t;
  mutable n_ints : int;
  mutable n_floats : int;
  mutable n_sensor : int;
  mutable n_actuator : int;
  mutable int_init : (int * int) list;
  mutable float_init : (int * float) list;
}

let i32ty = Silvm_value.i32ty
let u32ty = Silvm_value.u32ty
let u16ty = { Silvm_value.bits = 16; signed = false }
let u8ty = { Silvm_value.bits = 8; signed = false }

(* wrap a native int into the canonical value range of [t] (<= 32 bits:
   the low bits of native arithmetic are exact, so mask + sign-adjust
   reproduces Silvm_value.normalize) *)
let norm (t : ity) x =
  let m = (1 lsl t.Silvm_value.bits) - 1 in
  let v = x land m in
  if t.Silvm_value.signed && v land (1 lsl (t.Silvm_value.bits - 1)) <> 0 then
    v - m - 1
  else v

let to_f32 = Silvm_interp.to_f32

(* C float->int conversion, exactly the interpreter's of_float_trunc
   (NaN -> 0, truncate toward zero, modular wrap) *)
let trunc_to (t : ity) x =
  match Silvm_value.of_float_trunc t x with
  | Silvm_value.VI (_, v) -> Int64.to_int v
  | Silvm_value.VF _ -> assert false

(* interpreter write_cell for an integer cell, from a dynamic value *)
let dyn_to_int (t : ity) = function
  | Silvm_value.VI (_, x) -> Int64.to_int (Silvm_value.normalize t x)
  | Silvm_value.VF x -> trunc_to t x

(* ---------------- compiled expressions ---------------- *)

(* typed closures when the C type is static; [CD] is the dynamic tier *)
type cexp =
  | CI of ity * (st -> int)
  | CF of (st -> float)
  | CD of (st -> Silvm_value.t)

let dyn = function
  | CI (t, f) -> fun st -> Silvm_value.VI (t, Int64.of_int (f st))
  | CF f -> fun st -> Silvm_value.VF (f st)
  | CD f -> f

(* numeric value as a double (canonical ints are exact in int64, so
   [float_of_int] equals the interpreter's Int64.to_float) *)
let fl = function
  | CF f -> f
  | CI (_, f) -> fun st -> float_of_int (f st)
  | CD f -> fun st -> Silvm_value.to_float (f st)

let truth = function
  | CI (_, f) -> fun st -> f st <> 0
  | CF f -> fun st -> f st <> 0.0
  | CD f -> fun st -> Silvm_value.truth (f st)

(* Silvm_value.to_int: used for array subscripts and shift counts *)
let as_index = function
  | CI (_, f) -> f
  | CF f ->
      fun st ->
        let x = f st in
        if Float.is_nan x then 0
        else Int64.to_int (Int64.of_float (Float.trunc x))
  | CD f -> fun st -> Silvm_value.to_int (f st)

(* conversion applied when an expression feeds an i32 helper parameter
   (interpreter: write_cell into the int32_t argument cell) *)
let as_i32 = function
  | CI (t, f) ->
      if t = i32ty then f
      else if t.Silvm_value.signed || t.Silvm_value.bits < 32 then f
        (* canonical value of any narrower type is already in i32 range *)
      else fun st -> norm i32ty (f st)
  | CF f -> fun st -> trunc_to i32ty (f st)
  | CD f -> fun st -> dyn_to_int i32ty (f st)

let burn st =
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then fail "loop fuel exhausted (runaway loop?)"

(* non-local exit of a compiled function body *)
exception Creturn of Silvm_value.t option

(* ---------------- type resolution ---------------- *)

type rkind =
  | Rint of ity
  | Rf of fwidth
  | Rstruct of (cty * string) list
  | Rarr of cty * int
  | Rvoid

let rec resolve g (ty : cty) : rkind =
  match ty with
  | Double_t -> Rf `F64
  | Float_t -> Rf `F32
  | I8 | U8 | I16 | U16 | I32 | U32 ->
      Rint (Option.get (Silvm_interp.ity_of_base ty))
  | Named n -> (
      match Silvm_interp.stdint_ity n with
      | Some t -> Rint t
      | None -> (
          match Hashtbl.find_opt g.structs n with
          | Some fields -> Rstruct fields
          | None -> (
              match Hashtbl.find_opt g.typedefs n with
              | Some under -> resolve g under
              | None -> unsupported "unknown type name %s" n)))
  | Arr (ety, n) -> Rarr (ety, n)
  | Ptr _ -> unsupported "pointer object"
  | Void -> Rvoid

let narrow (t : ity) =
  if t.Silvm_value.bits > 32 then
    unsupported "64-bit storage in compiled SIL (interpreter-only)";
  t

let alloc_int g =
  let k = g.n_ints in
  g.n_ints <- k + 1;
  k

let alloc_flt g =
  let k = g.n_floats in
  g.n_floats <- k + 1;
  k

let rec new_storage g (ty : cty) : storage =
  match resolve g ty with
  | Rint t -> Sint (narrow t, alloc_int g)
  | Rf w -> Sflt (w, alloc_flt g)
  | Rstruct fields ->
      Sstructv
        (Array.of_list
           (List.map (fun (fty, fn) -> (fn, new_storage g fty)) fields))
  | Rarr (ety, n) -> (
      match resolve g ety with
      | Rint t ->
          let t = narrow t in
          let base = g.n_ints in
          g.n_ints <- base + n;
          Sintarr (t, base, n)
      | Rf w ->
          let base = g.n_floats in
          g.n_floats <- base + n;
          Sfltarr (w, base, n)
      | _ -> unsupported "array of aggregates")
  | Rvoid -> unsupported "void object"

(* ---------------- lvalues ---------------- *)

(* getter plus a normalizing setter (the setter performs the
   interpreter's write_cell wrap / binary32 rounding) *)
type lval =
  | LI of ity * (st -> int) * (st -> int -> unit)
  | LF of fwidth * (st -> float) * (st -> float -> unit)

let lval_of_storage = function
  | Sint (t, k) ->
      LI
        ( t,
          (fun st -> Array.unsafe_get st.ints k),
          fun st x -> Array.unsafe_set st.ints k (norm t x) )
  | Sflt (`F64, k) ->
      LF
        ( `F64,
          (fun st -> Array.unsafe_get st.floats k),
          fun st x -> Array.unsafe_set st.floats k x )
  | Sflt (`F32, k) ->
      LF
        ( `F32,
          (fun st -> Array.unsafe_get st.floats k),
          fun st x -> Array.unsafe_set st.floats k (to_f32 x) )
  | Sintarr _ | Sfltarr _ | Sstructv _ | Sxchg _ ->
      unsupported "aggregate read as a value"

let check_index len i =
  if i < 0 || i >= len then fail "index %d out of bounds (%d)" i len;
  i

let xchg_buf st = function `Sens -> st.sensor | `Act -> st.actuator

let index_lval stor (ix : st -> int) : lval =
  match stor with
  | Sintarr (t, base, len) ->
      LI
        ( t,
          (fun st -> Array.unsafe_get st.ints (base + check_index len (ix st))),
          fun st x ->
            Array.unsafe_set st.ints (base + check_index len (ix st)) (norm t x)
        )
  | Sfltarr (w, base, len) ->
      let round = match w with `F64 -> fun x -> x | `F32 -> to_f32 in
      LF
        ( w,
          (fun st -> Array.unsafe_get st.floats (base + check_index len (ix st))),
          fun st x ->
            Array.unsafe_set st.floats
              (base + check_index len (ix st))
              (round x) )
  | Sxchg (which, len) ->
      LI
        ( u16ty,
          (fun st -> Bigarray.Array1.get (xchg_buf st which) (check_index len (ix st))),
          fun st x ->
            Bigarray.Array1.set (xchg_buf st which)
              (check_index len (ix st))
              (norm u16ty x) )
  | Sint _ | Sflt _ | Sstructv _ -> fail "index into a non-array"

(* interpreter write_cell, from a compiled RHS *)
let store (lv : lval) (e : cexp) : st -> unit =
  match (lv, e) with
  | LI (_, _, set), CI (_, f) -> fun st -> set st (f st)
  | LI (t, _, set), CF f -> fun st -> set st (trunc_to t (f st))
  | LI (t, _, set), CD f -> fun st -> set st (dyn_to_int t (f st))
  | LF (_, _, set), e -> (
      let f = fl e in
      fun st -> set st (f st))

(* ---------------- libm (the interpreter's subset) ---------------- *)

let libm1 = Silvm_interp.libm1
let libm2 = Silvm_interp.libm2

(* ---------------- scalar constants ---------------- *)

let const_of_value = function
  | Silvm_value.VI (t, v) when t.Silvm_value.bits <= 32 ->
      let x = Int64.to_int v in
      CI (t, fun _ -> x)
  | Silvm_value.VF x -> CF (fun _ -> x)
  | v -> CD (fun _ -> v)

let int_lit n =
  let v = Int64.to_int (Silvm_value.normalize i32ty (Int64.of_int n)) in
  CI (i32ty, fun _ -> v)

let hex_lit n =
  if n <= 0x7FFFFFFF then int_lit n
  else
    let v = Int64.to_int (Silvm_value.normalize u32ty (Int64.of_int n)) in
    CI (u32ty, fun _ -> v)

(* ---------------- expression compilation ---------------- *)

(* integer promotion then the usual arithmetic conversions, decided at
   compile time: the canonical value is unchanged by promotion, so only
   a conversion to a *different* common type costs a wrap *)
let promote_ity (t : ity) = if t.Silvm_value.bits < 32 then i32ty else t

let common_ity (a : ity) (b : ity) =
  if a = b then a
  else if a.Silvm_value.signed = b.Silvm_value.signed then
    if a.Silvm_value.bits >= b.Silvm_value.bits then a else b
  else
    let s, u = if a.Silvm_value.signed then (a, b) else (b, a) in
    if u.Silvm_value.bits >= s.Silvm_value.bits then u else s

let conv_to (t : ity) (src : ity) (f : st -> int) : st -> int =
  if src = t then f else fun st -> norm t (f st)

type scope = (string, storage) Hashtbl.t

let rec compile_expr g (scope : scope) (e : Mir.expr) : cexp =
  match e with
  | Mir.Kint (n, Mir.Dec) -> int_lit n
  | Mir.Kint (n, Mir.Hex) -> hex_lit n
  | Mir.Kfloat x -> CF (fun _ -> x)
  | Mir.Load (Mir.Pvar v)
    when (not (Hashtbl.mem scope v)) && not (Hashtbl.mem g.globals v) -> (
      match Hashtbl.find_opt g.macros v with
      | Some value -> const_of_value value
      | None -> fail "unbound identifier %s" v)
  | Mir.Load p -> (
      match compile_lval g scope p with
      | LI (t, get, _) -> CI (t, get)
      | LF (_, get, _) -> CF get)
  | Mir.Eun (Mir.Neg, a) -> (
      match compile_expr g scope a with
      | CI (t, f) ->
          let t = promote_ity t in
          CI (t, fun st -> norm t (-f st))
      | CF f -> CF (fun st -> -.f st)
      | CD f -> CD (fun st -> Silvm_value.unop "-" (f st)))
  | Mir.Eun (Mir.Lnot, a) ->
      let tc = truth (compile_expr g scope a) in
      CI (i32ty, fun st -> if tc st then 0 else 1)
  | Mir.Ebin (Mir.Land, a, b) ->
      let ta = truth (compile_expr g scope a)
      and tb = truth (compile_expr g scope b) in
      CI (i32ty, fun st -> if ta st && tb st then 1 else 0)
  | Mir.Ebin (Mir.Lor, a, b) ->
      let ta = truth (compile_expr g scope a)
      and tb = truth (compile_expr g scope b) in
      CI (i32ty, fun st -> if ta st || tb st then 1 else 0)
  | Mir.Ebin (op, a, b) ->
      compile_bin op (compile_expr g scope a) (compile_expr g scope b)
  | Mir.Ecast (cty, a) -> compile_cast g cty (compile_expr g scope a)
  | Mir.Equantize (k, a) -> compile_quantize k (fl (compile_expr g scope a))
  | Mir.Esat16 a ->
      let f = as_i32 (compile_expr g scope a) in
      CI
        ( { Silvm_value.bits = 16; signed = true },
          fun st ->
            let x = f st in
            if x > 32767 then 32767 else if x < -32768 then -32768 else x )
  | Mir.Esat_add32 (a, b) ->
      let fa = as_i32 (compile_expr g scope a)
      and fb = as_i32 (compile_expr g scope b) in
      CI
        ( i32ty,
          fun st ->
            let s = fa st + fb st in
            if s > 0x7FFFFFFF then 0x7FFFFFFF
            else if s < -0x80000000 then -0x80000000
            else s )
  | Mir.Emul_shift (a, b, s) ->
      let fa = as_i32 (compile_expr g scope a)
      and fb = as_i32 (compile_expr g scope b)
      and fs = as_i32 (compile_expr g scope s) in
      CI
        ( i32ty,
          fun st ->
            (* the helper body, op for op: i64 product, rounding bias,
               arithmetic shift, truncating cast — with the
               interpreter's shift-range errors *)
            let x = fa st and y = fb st and sh = fs st in
            let p = Int64.mul (Int64.of_int x) (Int64.of_int y) in
            if sh - 1 < 0 || sh - 1 >= 64 then
              verr "shift count %d out of range" (sh - 1);
            let p = Int64.add p (Int64.shift_left 1L (sh - 1)) in
            if sh >= 64 then verr "shift count %d out of range" sh;
            Int64.to_int
              (Silvm_value.normalize i32ty (Int64.shift_right p sh)) )
  | Mir.Ecall (f, args) -> compile_call g scope f args
  | Mir.Eselect (c, a, b) -> (
      let tc = truth (compile_expr g scope c) in
      let ca = compile_expr g scope a and cb = compile_expr g scope b in
      match (ca, cb) with
      | CI (ta, fa), CI (tb, fb) when ta = tb ->
          CI (ta, fun st -> if tc st then fa st else fb st)
      | CF fa, CF fb -> CF (fun st -> if tc st then fa st else fb st)
      | _ ->
          (* the interpreter returns the arm's value unconverted: a
             type-mismatched ternary is data-dependently typed *)
          let da = dyn ca and db = dyn cb in
          CD (fun st -> if tc st then da st else db st))
  | Mir.Eopaque ce -> compile_cexpr g scope ce

and compile_bin op (a : cexp) (b : cexp) : cexp =
  match (a, b) with
  | (CF _ | CI _), (CF _ | CI _) when (match (a, b) with
                                       | CF _, _ | _, CF _ -> true
                                       | _ -> false) -> (
      let fa = fl a and fb = fl b in
      match op with
      | Mir.Add -> CF (fun st -> fa st +. fb st)
      | Mir.Sub -> CF (fun st -> fa st -. fb st)
      | Mir.Mul -> CF (fun st -> fa st *. fb st)
      | Mir.Div -> CF (fun st -> fa st /. fb st)
      | Mir.Lt -> CI (i32ty, fun st -> if fa st < fb st then 1 else 0)
      | Mir.Le -> CI (i32ty, fun st -> if fa st <= fb st then 1 else 0)
      | Mir.Gt -> CI (i32ty, fun st -> if fa st > fb st then 1 else 0)
      | Mir.Ge -> CI (i32ty, fun st -> if fa st >= fb st then 1 else 0)
      | Mir.Eq -> CI (i32ty, fun st -> if fa st = fb st then 1 else 0)
      | Mir.Ne -> CI (i32ty, fun st -> if fa st <> fb st then 1 else 0)
      | _ ->
          let name = Mir.bop_name op in
          CD (fun _ -> verr "operator %s on float operands" name))
  | CI (ta, fa0), CI (tb, fb0) -> (
      let pa = promote_ity ta and pb = promote_ity tb in
      let t = common_ity pa pb in
      let fa = conv_to t pa fa0 and fb = conv_to t pb fb0 in
      let cmp test = CI (i32ty, fun st -> if test (compare (fa st) (fb st)) then 1 else 0) in
      match op with
      | Mir.Add -> CI (t, fun st -> norm t (fa st + fb st))
      | Mir.Sub -> CI (t, fun st -> norm t (fa st - fb st))
      | Mir.Mul -> CI (t, fun st -> norm t (fa st * fb st))
      | Mir.Div ->
          CI
            ( t,
              fun st ->
                let x = fa st in
                let y = fb st in
                if y = 0 then verr "division by zero";
                norm t (x / y) )
      | Mir.Mod ->
          CI
            ( t,
              fun st ->
                let x = fa st in
                let y = fb st in
                if y = 0 then verr "remainder by zero";
                norm t (x mod y) )
      | Mir.Shl ->
          let bits = pa.Silvm_value.bits in
          let fx = fa0 and fn_ = as_index b in
          CI
            ( pa,
              fun st ->
                let x = fx st in
                let n = fn_ st in
                if n < 0 || n >= bits then verr "shift count %d out of range" n;
                norm pa (x lsl n) )
      | Mir.Shr ->
          let bits = pa.Silvm_value.bits in
          let signed = pa.Silvm_value.signed in
          let fx = fa0 and fn_ = as_index b in
          CI
            ( pa,
              fun st ->
                let x = fx st in
                let n = fn_ st in
                if n < 0 || n >= bits then verr "shift count %d out of range" n;
                if signed then x asr n else x lsr n )
      | Mir.Band -> CI (t, fun st -> norm t (fa st land fb st))
      | Mir.Bor -> CI (t, fun st -> norm t (fa st lor fb st))
      | Mir.Bxor -> CI (t, fun st -> norm t (fa st lxor fb st))
      | Mir.Eq -> cmp (fun c -> c = 0)
      | Mir.Ne -> cmp (fun c -> c <> 0)
      | Mir.Lt -> cmp (fun c -> c < 0)
      | Mir.Le -> cmp (fun c -> c <= 0)
      | Mir.Gt -> cmp (fun c -> c > 0)
      | Mir.Ge -> cmp (fun c -> c >= 0)
      | Mir.Land | Mir.Lor -> assert false)
  | _ ->
      let name = Mir.bop_name op in
      let da = dyn a and db = dyn b in
      CD
        (fun st ->
          let x = da st in
          let y = db st in
          Silvm_value.binop name x y)

and compile_cast g (ty : cty) (a : cexp) : cexp =
  match resolve g ty with
  | Rf `F64 -> CF (fl a)
  | Rf `F32 ->
      let f = fl a in
      CF (fun st -> to_f32 (f st))
  | Rint t when t.Silvm_value.bits <= 32 -> (
      match a with
      | CI (ta, f) -> if ta = t then a else CI (t, fun st -> norm t (f st))
      | CF f -> CI (t, fun st -> trunc_to t (f st))
      | CD f -> CI (t, fun st -> dyn_to_int t (f st)))
  | Rint _ -> unsupported "64-bit cast in compiled SIL (interpreter-only)"
  | Rvoid -> a (* (void)e discards the value *)
  | Rstruct _ | Rarr _ -> unsupported "cast to pointer/array type"

and compile_quantize k (af : st -> float) : cexp =
  let mt = Mir.qkind_ty k in
  let t =
    match mt with
    | Mir.Tint { Mir.bits; signed } -> { Silvm_value.bits; signed }
    | _ -> assert false
  in
  match k with
  | Mir.Qb -> CI (u8ty, fun st -> if af st <> 0.0 then 1 else 0)
  | _ ->
      let lo, hi = Mir.qkind_bounds k in
      let lo_i = trunc_to t lo and hi_i = trunc_to t hi in
      CI
        ( t,
          fun st ->
            let x = af st in
            if Float.is_nan x then 0
            else
              let r = Float.round x in
              if r >= hi then hi_i
              else if r <= lo then lo_i
              else trunc_to t r )

and compile_call g scope f args : cexp =
  if Hashtbl.mem g.srcfns f then
    let das =
      Array.of_list (List.map (fun a -> dyn (compile_expr g scope a)) args)
    in
    CD
      (fun st ->
        let vs = Array.to_list (Array.map (fun d -> d st) das) in
        match call_fn g st f vs with
        | Some v -> v
        | None -> Silvm_value.vbool false (* void call in expression context *))
  else
    (* the interpreter resolves externals before libm, and externals
       are registered per instance after compilation — so a libm-named
       call keeps a (cheap) dynamic guard for the shadowing case *)
    let shadowed mk =
      let das = List.map (fun a -> dyn (compile_expr g scope a)) args in
      CD
        (fun st ->
          match Hashtbl.find_opt st.externals f with
          | Some fn -> fn (List.map (fun d -> d st) das)
          | None -> mk st)
    in
    match (libm1 f, libm2 f, args) with
    | Some fn, _, [ a ] ->
        let fa = fl (compile_expr g scope a) in
        shadowed (fun st -> Silvm_value.VF (fn (fa st)))
    | _, Some fn, [ a; b ] ->
        let fa = fl (compile_expr g scope a)
        and fb = fl (compile_expr g scope b) in
        shadowed (fun st -> Silvm_value.VF (fn (fa st) (fb st)))
    | _ ->
        if String.equal f "lround" then
          match args with
          | [ a ] ->
              let fa = fl (compile_expr g scope a) in
              shadowed (fun st ->
                  Silvm_value.of_int64 i32ty
                    (Int64.of_float (Float.round (fa st))))
          | _ -> fail "lround arity"
        else
          let das =
            List.map (fun a -> dyn (compile_expr g scope a)) args
          in
          CD
            (fun st ->
              match Hashtbl.find_opt st.externals f with
              | Some fn -> fn (List.map (fun d -> d st) das)
              | None -> unsupported "call to unknown function %s" f)

(* invoke a compiled (or lazily failed) model function *)
and call_fn g st fname (args : Silvm_value.t list) : Silvm_value.t option =
  match Hashtbl.find_opt g.fns fname with
  | Some (Fn_ok fn) ->
      let n = Array.length fn.cf_params in
      if List.length args <> n then
        fail "%s: %d arguments, %d expected" fname (List.length args) n;
      List.iteri (fun i v -> fn.cf_params.(i) st v) args;
      let result =
        match fn.cf_body st with
        | () -> None
        | exception Creturn v -> v
      in
      (match (fn.cf_ret, result) with
      | None, _ -> None
      | Some cast, Some v -> Some (cast v)
      | Some _, None -> fail "%s: fell off a non-void function" fname)
  | Some (Fn_fail msg) -> raise (Silvm_interp.Unsupported msg)
  | None -> (
      match Hashtbl.find_opt st.externals fname with
      | Some f -> Some (f args)
      | None -> (
          match (libm1 fname, libm2 fname, args) with
          | Some f, _, [ x ] ->
              Some (Silvm_value.VF (f (Silvm_value.to_float x)))
          | _, Some f, [ x; y ] ->
              Some
                (Silvm_value.VF
                   (f (Silvm_value.to_float x) (Silvm_value.to_float y)))
          | _ ->
              if String.equal fname "lround" then
                match args with
                | [ x ] ->
                    Some
                      (Silvm_value.of_int64 i32ty
                         (Int64.of_float
                            (Float.round (Silvm_value.to_float x))))
                | _ -> fail "lround arity"
              else unsupported "call to unknown function %s" fname))

(* ---------------- places / C-AST fallback ---------------- *)

and storage_of_place g scope (p : Mir.place) : storage =
  match p with
  | Mir.Pvar v -> (
      match Hashtbl.find_opt scope v with
      | Some s -> s
      | None -> (
          match Hashtbl.find_opt g.globals v with
          | Some s -> s
          | None -> fail "unbound identifier %s" v))
  | Mir.Pfield (b, f) -> (
      match storage_of_place g scope b with
      | Sstructv fields -> (
          let n = Array.length fields in
          let rec find i =
            if i >= n then fail "no field %s" f
            else
              let fn, s = fields.(i) in
              if String.equal fn f then s else find (i + 1)
          in
          find 0)
      | _ -> fail "field access %s on a non-struct" f)
  | Mir.Pindex _ -> unsupported "nested array subscript"

and compile_lval g scope (p : Mir.place) : lval =
  match p with
  | Mir.Pindex (base, idx) ->
      let stor = storage_of_place g scope base in
      let ix = as_index (compile_expr g scope idx) in
      index_lval stor ix
  | _ -> lval_of_storage (storage_of_place g scope p)

and storage_of_cexpr g scope (e : C_ast.expr) : storage =
  match e with
  | Var v -> (
      match Hashtbl.find_opt scope v with
      | Some s -> s
      | None -> (
          match Hashtbl.find_opt g.globals v with
          | Some s -> s
          | None -> fail "unbound identifier %s" v))
  | Field (b, f) | Arrow (b, f) -> (
      match storage_of_cexpr g scope b with
      | Sstructv fields -> (
          let n = Array.length fields in
          let rec find i =
            if i >= n then fail "no field %s" f
            else
              let fn, s = fields.(i) in
              if String.equal fn f then s else find (i + 1)
          in
          find 0)
      | _ -> fail "field access %s on a non-struct" f)
  | _ -> unsupported "expression is not an lvalue"

and compile_clval g scope (e : C_ast.expr) : lval =
  match e with
  | Index (b, i) ->
      let stor = storage_of_cexpr g scope b in
      let ix = as_index (compile_cexpr g scope i) in
      index_lval stor ix
  | _ -> lval_of_storage (storage_of_cexpr g scope e)

(* pre-increment / pre-decrement: update then yield the stored value *)
and compile_incdec g scope op lv : cexp =
  let d = if String.equal op "++" then 1 else -1 in
  match compile_clval g scope lv with
  | LI (t, get, set) ->
      CI
        ( t,
          fun st ->
            set st (get st + d);
            get st )
  | LF (_, get, set) ->
      CF
        (fun st ->
          set st (get st +. float_of_int d);
          get st)

(* compiler over the C AST, for the fragments MIR carries opaquely;
   same storage, same closures, so opaque nodes cost nothing extra *)
and compile_cexpr g scope (e : C_ast.expr) : cexp =
  match e with
  | Var v when (not (Hashtbl.mem scope v)) && not (Hashtbl.mem g.globals v)
    -> (
      match Hashtbl.find_opt g.macros v with
      | Some value -> const_of_value value
      | None -> fail "unbound identifier %s" v)
  | Var _ | Field _ | Arrow _ | Index _ -> (
      match compile_clval g scope e with
      | LI (t, get, _) -> CI (t, get)
      | LF (_, get, _) -> CF get)
  | Un (("++" | "--") as op, lv) -> compile_incdec g scope op lv
  | Un (("-" | "!"), _) | Int_lit _ | Hex_lit _ | Float_lit _ | Call _
  | Cast_to _ | Ternary _ ->
      compile_expr g scope (Mir_of_c.lift_expr e)
  | Bin (op, _, _) when Mir.bop_of_name op <> None ->
      compile_expr g scope (Mir_of_c.lift_expr e)
  | Bin (op, a, b) ->
      let da = dyn (compile_cexpr g scope a)
      and db = dyn (compile_cexpr g scope b) in
      CD
        (fun st ->
          let x = da st in
          let y = db st in
          Silvm_value.binop op x y)
  | Un (op, a) -> (
      (* "+" and "~" via Silvm_value.unop; unknown operators raise the
         interpreter's runtime error when (and only when) evaluated *)
      match compile_cexpr g scope a with
      | CI (t, f) when String.equal op "~" ->
          let t = promote_ity t in
          CI (t, fun st -> norm t (lnot (f st)))
      | CI (t, f) when String.equal op "+" -> CI (promote_ity t, f)
      | CF f when String.equal op "+" -> CF f
      | ce ->
          let d = dyn ce in
          CD (fun st -> Silvm_value.unop op (d st)))
  | Str_lit _ -> CD (fun _ -> unsupported "string literal")

(* ---------------- statements ---------------- *)

and seq (fs : (st -> unit) list) : st -> unit =
  match fs with
  | [] -> fun _ -> ()
  | [ f ] -> f
  | [ f1; f2 ] ->
      fun st ->
        f1 st;
        f2 st
  | fs ->
      let a = Array.of_list fs in
      let n = Array.length a in
      fun st ->
        for i = 0 to n - 1 do
          (Array.unsafe_get a i) st
        done

and zero_storage = function
  | Sint (_, k) -> fun st -> Array.unsafe_set st.ints k 0
  | Sflt (_, k) -> fun st -> Array.unsafe_set st.floats k 0.0
  | Sintarr (_, base, len) ->
      fun st -> Array.fill st.ints base len 0
  | Sfltarr (_, base, len) ->
      fun st -> Array.fill st.floats base len 0.0
  | Sstructv _ | Sxchg _ -> unsupported "aggregate local"

and new_local g scope (ty : cty) name : storage =
  let stor =
    match resolve g ty with
    | Rint t -> Sint (narrow t, alloc_int g)
    | Rf w -> Sflt (w, alloc_flt g)
    | Rarr _ | Rstruct _ -> unsupported "aggregate local"
    | Rvoid -> unsupported "void object"
  in
  Hashtbl.replace scope name stor;
  stor

and compile_stmt g scope (s : Mir.stmt) : (st -> unit) option =
  match s with
  | Mir.Scomment _ -> None
  | Mir.Sdecl (cty, n, init) -> (
      (* declaration order equals execution order in the generated
         straight-line code, so binding the name from here on mirrors
         the interpreter's dynamic frame *)
      match init with
      | None ->
          let stor = new_local g scope cty n in
          Some (zero_storage stor)
      | Some e ->
          (* the initialiser is compiled in the scope *before* the
             declaration, like the interpreter evaluates it *)
          let ce = compile_expr g scope e in
          let stor = new_local g scope cty n in
          Some (store (lval_of_storage stor) ce))
  | Mir.Sassign (p, e) ->
      let ce = compile_expr g scope e in
      Some (store (compile_lval g scope p) ce)
  | Mir.Sexpr e -> (
      match compile_expr g scope e with
      | CI (_, f) -> Some (fun st -> ignore (f st))
      | CF f -> Some (fun st -> ignore (f st))
      | CD f -> Some (fun st -> ignore (f st)))
  | Mir.Sincr p -> (
      match compile_lval g scope p with
      | LI (_, get, set) -> Some (fun st -> set st (get st + 1))
      | LF (_, get, set) -> Some (fun st -> set st (get st +. 1.0)))
  | Mir.Sif (c, t, e) ->
      let tc = truth (compile_expr g scope c) in
      let ft = compile_stmts g scope t in
      let fe = compile_stmts g scope e in
      Some (fun st -> if tc st then ft st else fe st)
  | Mir.Swhile (c, b) ->
      let tc = truth (compile_expr g scope c) in
      let fb = compile_stmts g scope b in
      Some
        (fun st ->
          while tc st do
            burn st;
            fb st
          done)
  | Mir.Sfor (i, c, u, b) ->
      let fi = Option.value (compile_stmt g scope i) ~default:(fun _ -> ()) in
      let tc = truth (compile_expr g scope c) in
      let fb = compile_stmts g scope b in
      let fu = Option.value (compile_stmt g scope u) ~default:(fun _ -> ()) in
      Some
        (fun st ->
          fi st;
          while tc st do
            burn st;
            fb st;
            fu st
          done)
  | Mir.Sreturn e ->
      let d = Option.map (fun e -> dyn (compile_expr g scope e)) e in
      Some (fun st -> raise (Creturn (Option.map (fun f -> f st) d)))
  | Mir.Sblock b -> Some (compile_stmts g scope b)
  | Mir.Sopaque cs -> compile_cstmt g scope cs

and compile_stmts g scope (ss : Mir.stmt list) : st -> unit =
  seq (List.filter_map (compile_stmt g scope) ss)

and compile_cstmt g scope (s : C_ast.stmt) : (st -> unit) option =
  match s with
  | Expr (Un (("++" | "--") as op, lv)) -> (
      let d = if String.equal op "++" then 1 else -1 in
      match compile_clval g scope lv with
      | LI (_, get, set) -> Some (fun st -> set st (get st + d))
      | LF (_, get, set) -> Some (fun st -> set st (get st +. float_of_int d)))
  | Assign (lhs, e) ->
      let ce = compile_cexpr g scope e in
      Some (store (compile_clval g scope lhs) ce)
  | Raw raw -> Some (fun _ -> unsupported "raw statement: %s" raw)
  | _ -> compile_stmt g scope (Mir_of_c.lift_stmt s)

(* ---------------- functions ---------------- *)

and dyn_setter = function
  | Sint (t, k) -> fun st v -> Array.unsafe_set st.ints k (dyn_to_int t v)
  | Sflt (`F64, k) ->
      fun st v -> Array.unsafe_set st.floats k (Silvm_value.to_float v)
  | Sflt (`F32, k) ->
      fun st v -> Array.unsafe_set st.floats k (to_f32 (Silvm_value.to_float v))
  | Sintarr _ | Sfltarr _ | Sstructv _ | Sxchg _ ->
      unsupported "aggregate assignment"

and ret_cast g (ty : cty) : (Silvm_value.t -> Silvm_value.t) option =
  match resolve g ty with
  | Rvoid -> None
  | Rf `F64 -> Some (fun v -> Silvm_value.VF (Silvm_value.to_float v))
  | Rf `F32 -> Some (fun v -> Silvm_value.VF (to_f32 (Silvm_value.to_float v)))
  | Rint t when t.Silvm_value.bits <= 32 ->
      Some
        (function
        | Silvm_value.VI (_, x) -> Silvm_value.of_int64 t x
        | Silvm_value.VF x -> Silvm_value.of_float_trunc t x)
  | Rint _ -> unsupported "64-bit return in compiled SIL (interpreter-only)"
  | Rstruct _ | Rarr _ -> unsupported "aggregate return"

and compile_fn g (f : func) : compiled_fn =
  let scope : scope = Hashtbl.create 16 in
  let params =
    Array.of_list
      (List.map (fun (ty, n) -> dyn_setter (new_local g scope ty n)) f.args)
  in
  let body = compile_stmts g scope (Mir_of_c.lift_stmts f.body) in
  { cf_name = f.fname; cf_params = params; cf_body = body; cf_ret = ret_cast g f.ret }

(* ---------------- translation-unit processing ---------------- *)

let is_xchg_name n =
  String.equal n "pil_sensor_buf" || String.equal n "pil_actuator_buf"

let add_unit g (u : cunit) =
  List.iter
    (fun item ->
      match item with
      | Include _ | Include_local _ | Item_comment _ | Proto _ | Raw_item _ ->
          ()
      | Define (n, body) -> (
          match int_of_string_opt body with
          | Some v ->
              Hashtbl.replace g.macros n (Silvm_value.of_int i32ty v)
          | None -> (
              match float_of_string_opt body with
              | Some x -> Hashtbl.replace g.macros n (Silvm_value.VF x)
              | None -> () (* function-like or non-constant macro *)))
      | Typedef (ty, n) -> Hashtbl.replace g.typedefs n ty
      | Struct_def (n, fields) -> Hashtbl.replace g.structs n fields
      | Global { gty; gname; ginit; _ } ->
          let stor =
            match gty with
            | Arr (U16, n) when is_xchg_name gname ->
                if String.equal gname "pil_sensor_buf" then (
                  g.n_sensor <- n;
                  Sxchg (`Sens, n))
                else (
                  g.n_actuator <- n;
                  Sxchg (`Act, n))
            | _ -> new_storage g gty
          in
          (match ginit with
          | None -> ()
          | Some init ->
              let v =
                match init with
                | Int_lit v | Hex_lit v -> Silvm_value.of_int i32ty v
                | Float_lit x -> Silvm_value.VF x
                | Un ("-", Int_lit v) -> Silvm_value.of_int i32ty (-v)
                | Un ("-", Float_lit x) -> Silvm_value.VF (-.x)
                | _ -> unsupported "non-literal initialiser for global %s" gname
              in
              (match stor with
              | Sint (t, k) -> g.int_init <- (k, dyn_to_int t v) :: g.int_init
              | Sflt (w, k) ->
                  let x = Silvm_value.to_float v in
                  let x = match w with `F64 -> x | `F32 -> to_f32 x in
                  g.float_init <- (k, x) :: g.float_init
              | _ -> unsupported "initialiser for aggregate global %s" gname));
          Hashtbl.replace g.globals gname stor
      | Func_def f -> Hashtbl.replace g.srcfns f.fname f)
    u.items

let create_genv () =
  let g =
    {
      typedefs = Hashtbl.create 16;
      structs = Hashtbl.create 16;
      globals = Hashtbl.create 64;
      macros = Hashtbl.create 16;
      srcfns = Hashtbl.create 32;
      fns = Hashtbl.create 32;
      n_ints = 0;
      n_floats = 0;
      n_sensor = 0;
      n_actuator = 0;
      int_init = [];
      float_init = [];
    }
  in
  (* the limits.h / stdint.h constants the generated helpers reference,
     same table the interpreter preloads *)
  let ic t v = Silvm_value.VI (t, v) in
  List.iter
    (fun (n, v) -> Hashtbl.replace g.macros n v)
    [
      ("INT8_MAX", ic i32ty 127L);
      ("INT8_MIN", ic i32ty (-128L));
      ("INT16_MAX", ic i32ty 32767L);
      ("INT16_MIN", ic i32ty (-32768L));
      ("INT32_MAX", ic i32ty 2147483647L);
      ("INT32_MIN", ic i32ty (-2147483648L));
      ("UINT8_MAX", ic i32ty 255L);
      ("UINT16_MAX", ic i32ty 65535L);
      ("UINT32_MAX", ic u32ty 4294967295L);
    ];
  g

let compile (units : cunit list) : code =
  let g = create_genv () in
  List.iter (add_unit g) units;
  (* compile every function; a body outside the compiled subset fails
     lazily at call time, like the interpreter's Unsupported *)
  Hashtbl.iter
    (fun name f ->
      let slot =
        match compile_fn g f with
        | fn -> Fn_ok fn
        | exception Silvm_interp.Unsupported msg ->
            Fn_fail (Printf.sprintf "%s: %s" name msg)
        | exception Silvm_interp.Runtime_error msg ->
            Fn_fail (Printf.sprintf "%s: %s" name msg)
      in
      Hashtbl.replace g.fns name slot)
    g.srcfns;
  g

(* ---------------- instances ---------------- *)

let instantiate (g : code) : st =
  let ints = Array.make (max 1 g.n_ints) 0 in
  let floats = Array.make (max 1 g.n_floats) 0.0 in
  List.iter (fun (k, v) -> ints.(k) <- v) g.int_init;
  List.iter (fun (k, x) -> floats.(k) <- x) g.float_init;
  let mk n =
    let a = Bigarray.Array1.create Bigarray.int16_unsigned Bigarray.c_layout n in
    Bigarray.Array1.fill a 0;
    a
  in
  {
    ints;
    floats;
    sensor = mk g.n_sensor;
    actuator = mk g.n_actuator;
    externals = Hashtbl.create 8;
    fuel = loop_fuel_budget;
  }

let register_external st name f = Hashtbl.replace st.externals name f
let has_func (g : code) name = Hashtbl.mem g.fns name

let call (g : code) st fname args =
  st.fuel <- loop_fuel_budget;
  call_fn g st fname args

(* fast typed accessors for the exchange buffers *)
let set_sensor st slot v = Bigarray.Array1.set st.sensor slot (v land 0xFFFF)
let actuator st slot = Bigarray.Array1.get st.actuator slot
let actuator_buf st = st.actuator
let sensor_count (g : code) = g.n_sensor
let actuator_count (g : code) = g.n_actuator

(* ad-hoc reads/writes over global storage (block-output signals, the
   Inport fields): compiled once, then just a closure call per step *)
let reader (g : code) (e : C_ast.expr) : st -> Silvm_value.t =
  dyn (compile_cexpr g (Hashtbl.create 1) e)

let writer (g : code) (e : C_ast.expr) : st -> Silvm_value.t -> unit =
  let lv = compile_clval g (Hashtbl.create 1) e in
  match lv with
  | LI (t, _, set) -> fun st v -> set st (dyn_to_int t v)
  | LF (_, _, set) -> fun st v -> set st (Silvm_value.to_float v)

let read (g : code) st e = reader g e st
let write (g : code) st e v = writer g e st v

(* ---------------- content-hashed compile cache ----------------

   Same shape as {!Compile_cache} (lib/exec): a global table guarded by
   a mutex, compilation outside the lock, last write wins on a race.
   The key is a digest of the translation units' structure, so repeated
   submissions of identical generated code share one compiled [code]
   across the whole process — every domain of a campaign pool
   instantiates its own [st] over the shared closures. *)

let cache : (string, code) Hashtbl.t = Hashtbl.create 16
let cache_mutex = Mutex.create ()
let cache_hits = ref 0
let cache_misses = ref 0
let c_hits = Obs.counter "silvm.cache.hits"
let c_misses = Obs.counter "silvm.cache.misses"

let digest (units : cunit list) =
  Digest.to_hex (Digest.string (Marshal.to_string units []))

let compile_cached (units : cunit list) : code =
  let key = digest units in
  Mutex.lock cache_mutex;
  match Hashtbl.find_opt cache key with
  | Some code ->
      incr cache_hits;
      Mutex.unlock cache_mutex;
      Obs.add c_hits 1;
      Flight.engine ("silvm.cache.hit " ^ String.sub key 0 8);
      code
  | None ->
      incr cache_misses;
      Mutex.unlock cache_mutex;
      Obs.add c_misses 1;
      Flight.engine ("silvm.compile " ^ String.sub key 0 8);
      let t0 = if Obs.enabled () then Obs.now_ns () else 0.0 in
      let code = compile units in
      if Obs.enabled () then
        Obs.record_named "profile.silvm.compile_s"
          ((Obs.now_ns () -. t0) *. 1e-9);
      Mutex.lock cache_mutex;
      Hashtbl.replace cache key code;
      Mutex.unlock cache_mutex;
      code

let cache_stats () =
  Mutex.lock cache_mutex;
  let r = (!cache_hits, !cache_misses) in
  Mutex.unlock cache_mutex;
  r

let cache_clear () =
  Mutex.lock cache_mutex;
  Hashtbl.reset cache;
  cache_hits := 0;
  cache_misses := 0;
  Mutex.unlock cache_mutex
