(** Closure compiler for the generated SIL application.

    Compiles the translation units once (via the MIR lifting of
    {!Mir_of_c}, with a C-AST fallback for opaque nodes) into OCaml
    closures over a flat mutable state, bit-exact against
    {!Silvm_interp} on the whole covered subset. The immutable compiled
    [code] is shared — across instances, and across domains through the
    content-hashed {!compile_cached} — while each [st] instance owns its
    own cells, exchange buffers and externals. *)

type code
(** immutable compiled program: layouts, initialisers, closures *)

type st
(** one run-time instance of a compiled program *)

val compile : C_ast.cunit list -> code

val compile_cached : C_ast.cunit list -> code
(** [compile] memoised on a content hash of the units; thread-safe,
    shared process-wide (campaign domains hit the same entry) *)

val cache_stats : unit -> int * int
(** [(hits, misses)] of {!compile_cached} since start / last clear *)

val cache_clear : unit -> unit

val instantiate : code -> st
(** fresh state with global initialisers applied and zeroed exchange
    buffers; call the model's [<name>_initialize] next, as on target *)

val call : code -> st -> string -> Silvm_value.t list -> Silvm_value.t option
(** invoke a compiled function (fuel is reset, like the interpreter);
    raises {!Silvm_interp.Unsupported} / {!Silvm_interp.Runtime_error} /
    {!Silvm_value.Error} exactly where the interpreter does *)

val has_func : code -> string -> bool
val register_external : st -> string -> (Silvm_value.t list -> Silvm_value.t) -> unit

val set_sensor : st -> int -> int -> unit
(** write a 16-bit word into [pil_sensor_buf] *)

val actuator : st -> int -> int
(** read a 16-bit word from [pil_actuator_buf] *)

val actuator_buf :
  st -> (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
(** the live actuator exchange buffer, for vectorized trace snapshots *)

val sensor_count : code -> int
val actuator_count : code -> int

val reader : code -> C_ast.expr -> st -> Silvm_value.t
(** compile an ad-hoc read (e.g. [servo_B.pid_o0]) once; the returned
    closure is cheap to call per step *)

val writer : code -> C_ast.expr -> st -> Silvm_value.t -> unit

val read : code -> st -> C_ast.expr -> Silvm_value.t
val write : code -> st -> C_ast.expr -> Silvm_value.t -> unit
