(* MIL <-> SIL differential execution.

   Runs the same compiled diagram through the simulation engine and
   through the interpreted generated application in lock-step, feeding
   both the identical sensor stimulus each control period, and reports
   the first step/signal where they disagree. This is the back-to-back
   model-versus-code check the paper's MIL->PIL chain implies but never
   mechanises: every block output of every step is compared, so a
   codegen bug surfaces with the block name and both values in hand. *)

type float_mode =
  | Exact  (** IEEE equality; +0/-0 identified, NaN equal to NaN *)
  | Ulp of int  (** tolerate a few representable values of drift *)

type engine =
  | Interp  (** C AST interpreter *)
  | Compiled  (** closure-compiled execution (the default) *)
  | Both
      (** tri-lockstep: MIL vs compiled, plus a shadow interpreter the
          compiled engine must match bit-for-bit *)

type divergence = {
  d_step : int;
  d_time : float;
  d_block : string;
  d_port : int;
  d_mil : string;
  d_sil : string;
  d_faults : string list;
}

type report = {
  steps_run : int;  (** lock-steps completed without divergence *)
  steps_requested : int;
  signals : int;  (** block output signals compared per step *)
  divergence : divergence option;
  mil_seconds : float;
  sil_seconds : float;
}

(* a plant plus its PIL driver, packaged so heterogeneous plants fit
   one argument *)
type plant = Plant : 'p * 'p Pil_cosim.plant_driver -> plant

(* fault perturbation applied to the sensor codes BOTH sides consume,
   plus the fault names active at a time (for the divergence report) *)
type injector = {
  inj_sensors : step:int -> time:float -> int array -> int array;
  inj_active : time:float -> string list;
}

let ulp_key x =
  let b = Int64.bits_of_float x in
  if Int64.compare b 0L < 0 then Int64.sub Int64.min_int b else b

let ulp_dist a b =
  let d = Int64.sub (ulp_key a) (ulp_key b) in
  Int64.abs d

let floats_agree mode a b =
  (Float.is_nan a && Float.is_nan b)
  || a = b
  || match mode with Exact -> false | Ulp n -> ulp_dist a b <= Int64.of_int n

let values_agree mode mil sil =
  match mil with
  | Value.B b -> Silvm_value.truth sil = b
  | Value.I (_, i) -> Silvm_value.to_int64 sil = Int64.of_int i
  | Value.X _ -> Silvm_value.to_int64 sil = Int64.of_int (Value.to_int mil)
  | Value.F x -> (
      match sil with
      | Silvm_value.VF y -> floats_agree mode x y
      | Silvm_value.VI _ -> floats_agree mode x (Silvm_value.to_float sil))

let mil_to_string = function
  | Value.F x -> Printf.sprintf "%.17g" x
  | Value.I (dt, i) -> Printf.sprintf "%d:%s" i (Dtype.to_string dt)
  | Value.B b -> string_of_bool b
  | Value.X f -> Printf.sprintf "fix:%d" (Fixed.raw f)

(* every block output signal present in the generated block-I/O
   structure: the periodic population plus the function-call groups *)
let compared_signals comp =
  let m = comp.Compile.model in
  let blocks =
    Array.to_list comp.Compile.order
    @ List.concat_map
        (fun (_, arr) -> Array.to_list arr)
        comp.Compile.group_order
  in
  List.concat_map
    (fun b ->
      let spec = Model.spec_of m b in
      List.init spec.Block.n_out (fun p -> (b, p)))
    blocks

let inject sim apps schedule sensors =
  let m = (Sim.compiled sim).Compile.model in
  List.iter
    (fun (b, slot) ->
      let v = sensors.(slot) in
      let value =
        match (Model.spec_of m b).Block.kind with
        | "PE_Adc" | "AR_Adc" -> Value.of_int Dtype.Uint16 v
        | "PE_QuadDec" | "AR_Icu" -> Value.of_int Dtype.Int32 v
        | "PE_BitIO_In" | "AR_Dio_In" -> Value.of_bool (v <> 0)
        | k -> failwith ("Silvm_diff: unexpected sensor block kind " ^ k)
      in
      Sim.override_output sim (b, 0) (Some value);
      List.iter (fun app -> Silvm_app.set_sensor app slot v) apps)
    schedule.Target.sensor_slots

(* bit-for-bit equality between the two SIL engines: same type, same
   canonical integer, same float bits ([compare] would identify -0.
   with 0. and separate NaN from NaN — exactly the wrong laws here) *)
let sil_bits_equal a b =
  match (a, b) with
  | Silvm_value.VI (ta, va), Silvm_value.VI (tb, vb) -> ta = tb && Int64.equal va vb
  | Silvm_value.VF xa, Silvm_value.VF xb ->
      Int64.equal (Int64.bits_of_float xa) (Int64.bits_of_float xb)
  | _ -> false

exception Stop of divergence

(* CI drill: ECSD_DIVERGE_AT=<k> fabricates a divergence at lock-step k,
   exercising the whole forensics path (flight-recorder capture, bundle
   write, nonzero exit) on a model that genuinely agrees *)
let forced_divergence_at () =
  match Sys.getenv_opt "ECSD_DIVERGE_AT" with
  | Some s -> int_of_string_opt s
  | None -> None

let run ?(steps = 1000) ?(float_mode = Exact) ?(opt = false) ?(engine = Compiled)
    ?plant ?stimulus ?injector ~name ~project comp =
  Obs.span "silvm.diff" @@ fun () ->
  let sim = Sim.create comp in
  let app =
    let e = match engine with Interp -> `Interp | Compiled | Both -> `Compiled in
    Silvm_app.create ~opt ~engine:e ~name ~project comp
  in
  (* [Both] runs a shadow interpreter in tri-lockstep; any compiled
     value that is not bit-identical to the interpreter's is reported
     as a divergence, even where MIL agrees with both *)
  let shadow =
    match engine with
    | Both -> Some (Silvm_app.create ~opt ~engine:`Interp ~name ~project comp)
    | Interp | Compiled -> None
  in
  Silvm_app.initialize app;
  Option.iter Silvm_app.initialize shadow;
  let apps = app :: Option.to_list shadow in
  let sched = Silvm_app.schedule app in
  let n_act = List.length sched.Target.actuator_slots in
  let signals = compared_signals comp in
  let m = comp.Compile.model in
  let base = comp.Compile.base_dt in
  let mil_t = ref 0.0 and sil_t = ref 0.0 in
  let steps_done = ref 0 in
  let force_at = forced_divergence_at () in
  let result =
    try
      for k = 0 to steps - 1 do
        let time = float_of_int k *. base in
        let perturb s =
          let s =
            match injector with
            | Some i -> i.inj_sensors ~step:k ~time s
            | None -> s
          in
          if Flight.enabled () then
            Array.iteri
              (fun slot v ->
                Flight.signal ~step:k ~time ~port:slot ~value:(float_of_int v)
                  "sensor")
              s;
          s
        in
        (match plant, stimulus with
        | Some (Plant (p, d)), _ ->
            inject sim apps sched (perturb (d.Pil_cosim.read_sensors p ~time))
        | None, Some f -> inject sim apps sched (perturb (f k))
        | None, None -> ());
        let t0 = Sys.time () in
        Sim.step sim;
        mil_t := !mil_t +. (Sys.time () -. t0);
        let t1 = Sys.time () in
        Silvm_app.step app;
        sil_t := !sil_t +. (Sys.time () -. t1);
        Option.iter Silvm_app.step shadow;
        let faults () =
          match injector with Some i -> i.inj_active ~time | None -> []
        in
        (match force_at with
        | Some k' when k = k' ->
            raise
              (Stop
                 {
                   d_step = k;
                   d_time = time;
                   d_block = "__forced";
                   d_port = 0;
                   d_mil = "forced";
                   d_sil = "forced";
                   d_faults = faults ();
                 })
        | _ -> ());
        List.iter
          (fun (b, p) ->
            let mil = Sim.value sim (b, p) in
            let sil = Silvm_app.signal app (b, p) in
            if not (values_agree float_mode mil sil) then
              raise
                (Stop
                   {
                     d_step = k;
                     d_time = time;
                     d_block = Model.block_name m b;
                     d_port = p;
                     d_mil = mil_to_string mil;
                     d_sil = Silvm_value.to_string sil;
                     d_faults = faults ();
                   });
            match shadow with
            | None -> ()
            | Some sh ->
                let isil = Silvm_app.signal sh (b, p) in
                if not (sil_bits_equal sil isil) then
                  raise
                    (Stop
                       {
                         d_step = k;
                         d_time = time;
                         d_block = Model.block_name m b;
                         d_port = p;
                         d_mil = "interp:" ^ Silvm_value.to_string isil;
                         d_sil = Silvm_value.to_string sil;
                         d_faults = faults ();
                       }))
          signals;
        incr steps_done;
        match plant with
        | Some (Plant (p, d)) ->
            let acts = Array.init n_act (Silvm_app.actuator app) in
            d.Pil_cosim.apply_actuators p acts;
            d.Pil_cosim.advance p ~dt:base
        | None -> ()
      done;
      None
    with Stop d ->
      (* forensic moment: record the mismatch itself, then freeze the
         window of this track's events that led to it *)
      if Flight.enabled () then begin
        Flight.mark ~step:d.d_step ~time:d.d_time
          (Printf.sprintf "divergence %s[%d] mil=%s sil=%s" d.d_block d.d_port
             d.d_mil d.d_sil);
        Flight.capture
          ~reason:
            (Printf.sprintf "diff divergence at step %d on %s port %d"
               d.d_step d.d_block d.d_port)
      end;
      Some d
  in
  {
    steps_run = !steps_done;
    steps_requested = steps;
    signals = List.length signals;
    divergence = result;
    mil_seconds = !mil_t;
    sil_seconds = !sil_t;
  }
