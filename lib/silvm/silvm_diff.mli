(** MIL <-> SIL differential execution.

    Runs the same compiled diagram through the simulation engine and
    through the interpreted generated application in lock-step, feeding
    both the identical sensor stimulus each control period, and reports
    the first step/signal where they disagree. This is the back-to-back
    model-versus-code check the paper's MIL->PIL chain implies but never
    mechanises: every block output of every step is compared, so a
    codegen bug surfaces with the block name and both values in hand. *)

type float_mode =
  | Exact  (** IEEE equality; +0/-0 identified, NaN equal to NaN *)
  | Ulp of int  (** tolerate a few representable values of drift *)

type engine =
  | Interp  (** C AST interpreter *)
  | Compiled  (** closure-compiled execution (the default) *)
  | Both
      (** tri-lockstep: MIL vs compiled, plus a shadow interpreter the
          compiled engine must match bit-for-bit; an engine mismatch is
          reported as a divergence with [d_mil] prefixed ["interp:"] *)

type divergence = {
  d_step : int;
  d_time : float;
  d_block : string;
  d_port : int;
  d_mil : string;  (** the engine's value, printed exactly *)
  d_sil : string;  (** the interpreter's value, printed exactly *)
  d_faults : string list;
      (** names of the injected faults active at the divergence step
          (empty when no injector was armed) *)
}

type report = {
  steps_run : int;  (** lock-steps completed without divergence *)
  steps_requested : int;
  signals : int;  (** block output signals compared per step *)
  divergence : divergence option;
  mil_seconds : float;  (** CPU time spent in [Sim.step] *)
  sil_seconds : float;  (** CPU time spent in the interpreter *)
}

type plant = Plant : 'p * 'p Pil_cosim.plant_driver -> plant
(** A plant plus its PIL driver, packaged so heterogeneous plants fit
    one argument. The plant is driven from the {e SIL} actuator buffer
    (the generated application's own output), so both sides see the
    identical sensor stream. *)

type injector = {
  inj_sensors : step:int -> time:float -> int array -> int array;
      (** perturb the raw sensor codes; applied to the stream {e both}
          sides consume, so faults exercise recovery paths without
          breaking lock-step equality *)
  inj_active : time:float -> string list;
      (** fault names active at a time, for the divergence report *)
}

val run :
  ?steps:int ->
  ?float_mode:float_mode ->
  ?opt:bool ->
  ?engine:engine ->
  ?plant:plant ->
  ?stimulus:(int -> int array) ->
  ?injector:injector ->
  name:string ->
  project:Bean_project.t ->
  Compile.t ->
  report
(** Compare [steps] (default 1000) lock-steps at [float_mode] (default
    {!Exact}) on [engine] (default {!Compiled}). Sensor values come
    either from [plant] (closed loop) or from [stimulus] (raw 16-bit
    codes per sensor slot, indexed like [Target.schedule.sensor_slots]);
    with neither, source blocks drive the model on both sides. [opt]
    runs the SIL side on the MIR-optimized model unit — the differential
    run is then the bit-exactness oracle for the optimization passes. *)
