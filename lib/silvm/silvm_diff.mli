(** MIL <-> SIL differential execution.

    Runs the same compiled diagram through the simulation engine and
    through the interpreted generated application in lock-step, feeding
    both the identical sensor stimulus each control period, and reports
    the first step/signal where they disagree. This is the back-to-back
    model-versus-code check the paper's MIL->PIL chain implies but never
    mechanises: every block output of every step is compared, so a
    codegen bug surfaces with the block name and both values in hand. *)

type float_mode =
  | Exact  (** IEEE equality; +0/-0 identified, NaN equal to NaN *)
  | Ulp of int  (** tolerate a few representable values of drift *)

type divergence = {
  d_step : int;
  d_time : float;
  d_block : string;
  d_port : int;
  d_mil : string;  (** the engine's value, printed exactly *)
  d_sil : string;  (** the interpreter's value, printed exactly *)
}

type report = {
  steps_run : int;  (** lock-steps completed without divergence *)
  steps_requested : int;
  signals : int;  (** block output signals compared per step *)
  divergence : divergence option;
  mil_seconds : float;  (** CPU time spent in [Sim.step] *)
  sil_seconds : float;  (** CPU time spent in the interpreter *)
}

type plant = Plant : 'p * 'p Pil_cosim.plant_driver -> plant
(** A plant plus its PIL driver, packaged so heterogeneous plants fit
    one argument. The plant is driven from the {e SIL} actuator buffer
    (the generated application's own output), so both sides see the
    identical sensor stream. *)

val run :
  ?steps:int ->
  ?float_mode:float_mode ->
  ?plant:plant ->
  ?stimulus:(int -> int array) ->
  name:string ->
  project:Bean_project.t ->
  Compile.t ->
  report
(** Compare [steps] (default 1000) lock-steps at [float_mode] (default
    {!Exact}). Sensor values come either from [plant] (closed loop) or
    from [stimulus] (raw 16-bit codes per sensor slot, indexed like
    [Target.schedule.sensor_slots]); with neither, source blocks drive
    the model on both sides. *)
