(* An interpreter for the ecsd_cgen C AST.

   Executes the translation set of a generated application (model
   header + model source) directly on the AST: no C compiler is
   involved, so the "software in the loop" stage runs anywhere the
   environment runs, yet with the C arithmetic reproduced faithfully by
   {!Silvm_value}. The subset covered is exactly what the PEERT targets
   emit -- scalar/struct/array storage, functions, control flow, the
   libm calls of the block library -- and anything outside it raises
   {!Unsupported} rather than guessing. *)

open C_ast

exception Unsupported of string
exception Runtime_error of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt
let fail fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

(* storage cells: every object of the translation set lives in one *)
type cell =
  | Cint of Silvm_value.ity * int64 ref
  | Cfloat of [ `F32 | `F64 ] * float ref
  | Carr of cell array
  | Cstruct of (string * cell) array

type t = {
  typedefs : (string, cty) Hashtbl.t;
  structs : (string, (cty * string) list) Hashtbl.t;
  globals : (string, cell) Hashtbl.t;
  funcs : (string, func) Hashtbl.t;
  macros : (string, Silvm_value.t) Hashtbl.t;
  externals : (string, Silvm_value.t list -> Silvm_value.t) Hashtbl.t;
  mutable fuel : int;
  mutable stmts_executed : int;
}

let loop_fuel_budget = 100_000_000

(* the stdint names appear as [Named] types (e.g. the int64_t
   accumulator of pe_sat_add32) *)
let stdint_ity = function
  | "int8_t" -> Some { Silvm_value.bits = 8; signed = true }
  | "uint8_t" | "bool_t" -> Some { Silvm_value.bits = 8; signed = false }
  | "int16_t" -> Some { Silvm_value.bits = 16; signed = true }
  | "uint16_t" -> Some { Silvm_value.bits = 16; signed = false }
  | "int32_t" -> Some { Silvm_value.bits = 32; signed = true }
  | "uint32_t" -> Some { Silvm_value.bits = 32; signed = false }
  | "int64_t" -> Some { Silvm_value.bits = 64; signed = true }
  | "uint64_t" -> Some { Silvm_value.bits = 64; signed = false }
  | _ -> None

let ity_of_base = function
  | I8 -> Some { Silvm_value.bits = 8; signed = true }
  | U8 -> Some { Silvm_value.bits = 8; signed = false }
  | I16 -> Some { Silvm_value.bits = 16; signed = true }
  | U16 -> Some { Silvm_value.bits = 16; signed = false }
  | I32 -> Some { Silvm_value.bits = 32; signed = true }
  | U32 -> Some { Silvm_value.bits = 32; signed = false }
  | _ -> None

let create () =
  let t =
    {
      typedefs = Hashtbl.create 16;
      structs = Hashtbl.create 16;
      globals = Hashtbl.create 64;
      funcs = Hashtbl.create 32;
      macros = Hashtbl.create 16;
      externals = Hashtbl.create 8;
      fuel = loop_fuel_budget;
      stmts_executed = 0;
    }
  in
  (* limits.h / stdint.h constants the generated helpers reference *)
  let ic ity v = Silvm_value.VI (ity, v) in
  let i32 = Silvm_value.i32ty and u32 = Silvm_value.u32ty in
  List.iter
    (fun (n, v) -> Hashtbl.replace t.macros n v)
    [
      ("INT8_MAX", ic i32 127L);
      ("INT8_MIN", ic i32 (-128L));
      ("INT16_MAX", ic i32 32767L);
      ("INT16_MIN", ic i32 (-32768L));
      ("INT32_MAX", ic i32 2147483647L);
      ("INT32_MIN", ic i32 (-2147483648L));
      ("UINT8_MAX", ic i32 255L);
      ("UINT16_MAX", ic i32 65535L);
      ("UINT32_MAX", ic u32 4294967295L);
    ];
  t

let rec new_cell t ty =
  match ty with
  | Double_t -> Cfloat (`F64, ref 0.0)
  | Float_t -> Cfloat (`F32, ref 0.0)
  | I8 | U8 | I16 | U16 | I32 | U32 ->
      Cint (Option.get (ity_of_base ty), ref 0L)
  | Named n -> (
      match stdint_ity n with
      | Some ity -> Cint (ity, ref 0L)
      | None -> (
          match Hashtbl.find_opt t.structs n with
          | Some fields ->
              Cstruct
                (Array.of_list
                   (List.map (fun (fty, fn) -> (fn, new_cell t fty)) fields))
          | None -> (
              match Hashtbl.find_opt t.typedefs n with
              | Some under -> new_cell t under
              | None -> unsupported "unknown type name %s" n)))
  | Arr (ety, n) -> Carr (Array.init n (fun _ -> new_cell t ety))
  | Ptr _ -> unsupported "pointer object"
  | Void -> unsupported "void object"

(* round through IEEE binary32, the C float type *)
let to_f32 x = Int32.float_of_bits (Int32.bits_of_float x)

let read_cell = function
  | Cint (ity, r) -> Silvm_value.VI (ity, !r)
  | Cfloat (_, r) -> Silvm_value.VF !r
  | Carr _ | Cstruct _ -> unsupported "aggregate read as a value"

let write_cell c v =
  match c with
  | Cint (ity, r) -> (
      match v with
      | Silvm_value.VI (_, x) -> r := Silvm_value.normalize ity x
      | Silvm_value.VF x -> (
          match Silvm_value.of_float_trunc ity x with
          | Silvm_value.VI (_, y) -> r := y
          | _ -> assert false))
  | Cfloat (w, r) -> (
      let x = Silvm_value.to_float v in
      r := match w with `F64 -> x | `F32 -> to_f32 x)
  | Carr _ | Cstruct _ -> unsupported "aggregate assignment"

let rec cast_value t ty v =
  match ty with
  | Double_t -> Silvm_value.VF (Silvm_value.to_float v)
  | Float_t -> Silvm_value.VF (to_f32 (Silvm_value.to_float v))
  | I8 | U8 | I16 | U16 | I32 | U32 -> (
      let ity = Option.get (ity_of_base ty) in
      match v with
      | Silvm_value.VI (_, x) -> Silvm_value.of_int64 ity x
      | Silvm_value.VF x -> Silvm_value.of_float_trunc ity x)
  | Named n -> (
      match stdint_ity n with
      | Some ity -> (
          match v with
          | Silvm_value.VI (_, x) -> Silvm_value.of_int64 ity x
          | Silvm_value.VF x -> Silvm_value.of_float_trunc ity x)
      | None -> (
          match Hashtbl.find_opt t.typedefs n with
          | Some under -> cast_value t under v
          | None -> unsupported "cast to unknown type %s" n))
  | Void -> v (* (void)e discards the value *)
  | Ptr _ | Arr _ -> unsupported "cast to pointer/array type"

let add_unit t (u : cunit) =
  List.iter
    (fun item ->
      match item with
      | Include _ | Include_local _ | Item_comment _ | Proto _ | Raw_item _ ->
          ()
      | Define (n, body) -> (
          match int_of_string_opt body with
          | Some v -> Hashtbl.replace t.macros n (Silvm_value.of_int Silvm_value.i32ty v)
          | None -> (
              match float_of_string_opt body with
              | Some x -> Hashtbl.replace t.macros n (Silvm_value.VF x)
              | None -> () (* function-like or non-constant macro *)))
      | Typedef (ty, n) -> Hashtbl.replace t.typedefs n ty
      | Struct_def (n, fields) -> Hashtbl.replace t.structs n fields
      | Global { gty; gname; ginit; _ } ->
          let c = new_cell t gty in
          (match ginit with
          | Some (Int_lit v) -> write_cell c (Silvm_value.of_int Silvm_value.i32ty v)
          | Some (Hex_lit v) -> write_cell c (Silvm_value.of_int Silvm_value.i32ty v)
          | Some (Float_lit x) -> write_cell c (Silvm_value.VF x)
          | Some (Un ("-", Int_lit v)) ->
              write_cell c (Silvm_value.of_int Silvm_value.i32ty (-v))
          | Some (Un ("-", Float_lit x)) -> write_cell c (Silvm_value.VF (-.x))
          | Some _ -> unsupported "non-literal initialiser for global %s" gname
          | None -> ());
          Hashtbl.replace t.globals gname c
      | Func_def f -> Hashtbl.replace t.funcs f.fname f)
    u.items

let register_external t name f = Hashtbl.replace t.externals name f
let has_func t name = Hashtbl.mem t.funcs name
let stmts_executed t = t.stmts_executed

(* libm subset the block library emits calls to *)
let libm1 = function
  | "sin" -> Some sin
  | "cos" -> Some cos
  | "tan" -> Some tan
  | "asin" -> Some asin
  | "acos" -> Some acos
  | "atan" -> Some atan
  | "exp" -> Some exp
  | "log" -> Some log
  | "log10" -> Some log10
  | "sqrt" -> Some sqrt
  | "fabs" -> Some Float.abs
  | "floor" -> Some Float.floor
  | "ceil" -> Some Float.ceil
  | "round" -> Some Float.round
  | "trunc" -> Some Float.trunc
  | _ -> None

let libm2 = function
  | "fmod" -> Some Float.rem
  | "pow" -> Some Float.pow
  | "atan2" -> Some Float.atan2
  | "fmin" -> Some Float.min
  | "fmax" -> Some Float.max
  | _ -> None

exception Return_value of Silvm_value.t option

let rec resolve_cell t frame e =
  match e with
  | Var n -> (
      match Hashtbl.find_opt frame n with
      | Some c -> c
      | None -> (
          match Hashtbl.find_opt t.globals n with
          | Some c -> c
          | None -> fail "unbound identifier %s" n))
  | Field (b, f) | Arrow (b, f) -> (
      match resolve_cell t frame b with
      | Cstruct fields -> (
          let n = Array.length fields in
          let rec find i =
            if i >= n then fail "no field %s" f
            else
              let fn, c = fields.(i) in
              if String.equal fn f then c else find (i + 1)
          in
          find 0)
      | _ -> fail "field access %s on a non-struct" f)
  | Index (b, i) -> (
      let idx = Silvm_value.to_int (eval t frame i) in
      match resolve_cell t frame b with
      | Carr cells ->
          if idx < 0 || idx >= Array.length cells then
            fail "index %d out of bounds (%d)" idx (Array.length cells);
          cells.(idx)
      | _ -> fail "index into a non-array")
  | _ -> unsupported "expression is not an lvalue"

and eval t frame e =
  match e with
  | Int_lit v -> Silvm_value.of_int Silvm_value.i32ty v
  | Hex_lit v ->
      if v <= 0x7FFFFFFF then Silvm_value.of_int Silvm_value.i32ty v
      else Silvm_value.of_int Silvm_value.u32ty v
  | Float_lit x -> Silvm_value.VF x
  | Str_lit _ -> unsupported "string literal"
  | Var n -> (
      match Hashtbl.find_opt frame n with
      | Some c -> read_cell c
      | None -> (
          match Hashtbl.find_opt t.globals n with
          | Some c -> read_cell c
          | None -> (
              match Hashtbl.find_opt t.macros n with
              | Some v -> v
              | None -> fail "unbound identifier %s" n)))
  | Field _ | Arrow _ | Index _ -> read_cell (resolve_cell t frame e)
  | Call (fname, args) -> (
      match call_opt t fname (List.map (eval t frame) args) with
      | Some v -> v
      | None -> Silvm_value.vbool false (* void call in expression context *))
  | Un (("++" | "--") as op, lv) ->
      let c = resolve_cell t frame lv in
      let one = Silvm_value.of_int Silvm_value.i32ty 1 in
      let v' =
        Silvm_value.binop (if op = "++" then "+" else "-") (read_cell c) one
      in
      write_cell c v';
      read_cell c
  | Un (op, a) -> Silvm_value.unop op (eval t frame a)
  | Bin ("&&", a, b) ->
      Silvm_value.vbool
        (Silvm_value.truth (eval t frame a) && Silvm_value.truth (eval t frame b))
  | Bin ("||", a, b) ->
      Silvm_value.vbool
        (Silvm_value.truth (eval t frame a) || Silvm_value.truth (eval t frame b))
  | Bin (op, a, b) -> Silvm_value.binop op (eval t frame a) (eval t frame b)
  | Cast_to (ty, a) -> cast_value t ty (eval t frame a)
  | Ternary (c, a, b) ->
      if Silvm_value.truth (eval t frame c) then eval t frame a
      else eval t frame b

and exec t frame s =
  t.stmts_executed <- t.stmts_executed + 1;
  match s with
  | Comment _ -> ()
  | Expr e -> ignore (eval t frame e)
  | Decl (ty, n, init) ->
      let c = new_cell t ty in
      (match init with Some e -> write_cell c (eval t frame e) | None -> ());
      Hashtbl.replace frame n c
  | Assign (lv, e) -> write_cell (resolve_cell t frame lv) (eval t frame e)
  | If (c, a, b) ->
      if Silvm_value.truth (eval t frame c) then exec_list t frame a
      else exec_list t frame b
  | While (c, body) ->
      while Silvm_value.truth (eval t frame c) do
        burn_fuel t;
        exec_list t frame body
      done
  | For (init, cond, post, body) ->
      exec t frame init;
      while Silvm_value.truth (eval t frame cond) do
        burn_fuel t;
        exec_list t frame body;
        exec t frame post
      done
  | Return e -> raise (Return_value (Option.map (eval t frame) e))
  | Block body -> exec_list t frame body
  | Raw s -> unsupported "raw statement: %s" s

and exec_list t frame l = List.iter (exec t frame) l

and burn_fuel t =
  t.fuel <- t.fuel - 1;
  if t.fuel <= 0 then fail "loop fuel exhausted (runaway loop?)"

and call_opt t fname args =
  match Hashtbl.find_opt t.funcs fname with
  | Some f ->
      if List.length args <> List.length f.args then
        fail "%s: %d arguments, %d expected" fname (List.length args)
          (List.length f.args);
      let frame = Hashtbl.create 16 in
      List.iter2
        (fun (ty, n) v ->
          let c = new_cell t ty in
          write_cell c v;
          Hashtbl.replace frame n c)
        f.args args;
      let result =
        match exec_list t frame f.body with
        | () -> None
        | exception Return_value v -> v
      in
      (match (f.ret, result) with
      | Void, _ -> None
      | ty, Some v -> Some (cast_value t ty v)
      | _, None -> fail "%s: fell off a non-void function" fname)
  | None -> (
      match Hashtbl.find_opt t.externals fname with
      | Some f -> Some (f args)
      | None -> (
          match (libm1 fname, libm2 fname, args) with
          | Some f, _, [ x ] -> Some (Silvm_value.VF (f (Silvm_value.to_float x)))
          | _, Some f, [ x; y ] ->
              Some
                (Silvm_value.VF
                   (f (Silvm_value.to_float x) (Silvm_value.to_float y)))
          | _ ->
              (* lround: the only libm call returning an integer *)
              if String.equal fname "lround" then
                match args with
                | [ x ] ->
                    Some
                      (Silvm_value.of_int64 Silvm_value.i32ty
                         (Int64.of_float (Float.round (Silvm_value.to_float x))))
                | _ -> fail "lround arity"
              else unsupported "call to unknown function %s" fname))

let call t fname args =
  t.fuel <- loop_fuel_budget;
  call_opt t fname args

let read t e = eval t (Hashtbl.create 1) e
let write t e v = write_cell (resolve_cell t (Hashtbl.create 1) e) v
