(* C scalar values for the SIL interpreter.

   The generated application is C99 on an ILP32 target (int = long =
   32 bit, long long = 64 bit); the interpreter reproduces that
   arithmetic exactly: integer promotion to int, the usual arithmetic
   conversions, modular wrap-around at the operation width, truncating
   division, and arithmetic right shift on signed operands. Integers
   are carried as a canonical [int64]: sign-extended when the C type is
   signed, zero-extended (hence non-negative) when unsigned. *)

type ity = { bits : int; signed : bool }

type t =
  | VI of ity * int64
  | VF of float

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let i32ty = { bits = 32; signed = true }
let u32ty = { bits = 32; signed = false }
let i64ty = { bits = 64; signed = true }

(* canonical form: wrap [x] into the value range of [ity] *)
let normalize ity x =
  if ity.bits >= 64 then x
  else
    let w = Int64.shift_left 1L ity.bits in
    let v = Int64.logand x (Int64.sub w 1L) in
    if ity.signed && Int64.logand v (Int64.shift_left 1L (ity.bits - 1)) <> 0L
    then Int64.sub v w
    else v

let of_int ity x = VI (ity, normalize ity (Int64.of_int x))
let of_int64 ity x = VI (ity, normalize ity x)

let to_float = function
  | VF x -> x
  | VI (_, v) -> Int64.to_float v

let to_int64 = function
  | VI (_, v) -> v
  | VF x -> if Float.is_nan x then 0L else Int64.of_float (Float.trunc x)

let to_int v = Int64.to_int (to_int64 v)

let truth = function
  | VF x -> x <> 0.0
  | VI (_, v) -> v <> 0L

let vbool b = VI (i32ty, if b then 1L else 0L)

(* C cast of a float to an integer type: truncate toward zero; the
   out-of-range/NaN cases are UB in C -- pick the deterministic choice
   of NaN -> 0 and modular wrap, which the generated code never relies
   on (quantisation goes through the guarded pe_cast_* helpers). *)
let of_float_trunc ity x =
  if Float.is_nan x then VI (ity, 0L)
  else VI (ity, normalize ity (Int64.of_float (Float.trunc x)))

(* integer promotion: everything narrower than int becomes int *)
let promote = function
  | VI (ity, v) when ity.bits < 32 -> VI (i32ty, v)
  | v -> v

(* usual arithmetic conversions for two promoted integer operands *)
let common_ity a b =
  if a = b then a
  else if a.signed = b.signed then if a.bits >= b.bits then a else b
  else
    let s, u = if a.signed then (a, b) else (b, a) in
    if u.bits >= s.bits then u
      (* unsigned rank >= signed rank: unsigned wins *)
    else s (* the signed type can represent all values of the narrower
              unsigned type (i64 vs u32) *)

let pair_ints a b =
  match (promote a, promote b) with
  | VI (ta, va), VI (tb, vb) ->
      let t = common_ity ta tb in
      (t, normalize t va, normalize t vb)
  | _ -> assert false

let int_arith op a b =
  let t, x, y = pair_ints a b in
  VI (t, normalize t (op x y))

let int_div a b =
  let t, x, y = pair_ints a b in
  if y = 0L then err "division by zero";
  (* Int64.div truncates toward zero, matching C99 *)
  VI (t, normalize t (Int64.div x y))

let int_rem a b =
  let t, x, y = pair_ints a b in
  if y = 0L then err "remainder by zero";
  VI (t, normalize t (Int64.rem x y))

let shift dir a b =
  let a = promote a in
  let n = Int64.to_int (to_int64 b) in
  match a with
  | VI (t, v) ->
      if n < 0 || n >= t.bits then err "shift count %d out of range" n;
      let r =
        match dir with
        | `L -> Int64.shift_left v n
        | `R ->
            if t.signed then Int64.shift_right v n
            else Int64.shift_right_logical (normalize t v) n
      in
      VI (t, normalize t r)
  | VF _ -> err "shift of a float operand"

let bitop op a b =
  let t, x, y = pair_ints a b in
  VI (t, normalize t (op x y))

let compare_vals a b =
  match (a, b) with
  | VF _, _ | _, VF _ -> Float.compare (to_float a) (to_float b)
  | VI _, VI _ ->
      let _, x, y = pair_ints a b in
      Int64.compare x y

let binop op a b =
  match (op, a, b) with
  | _, VF _, _ | _, _, VF _ -> (
      let x = to_float a and y = to_float b in
      match op with
      | "+" -> VF (x +. y)
      | "-" -> VF (x -. y)
      | "*" -> VF (x *. y)
      | "/" -> VF (x /. y)
      | "<" -> vbool (x < y)
      | "<=" -> vbool (x <= y)
      | ">" -> vbool (x > y)
      | ">=" -> vbool (x >= y)
      | "==" -> vbool (x = y)
      | "!=" -> vbool (x <> y)
      | _ -> err "operator %s on float operands" op)
  | "+", _, _ -> int_arith Int64.add a b
  | "-", _, _ -> int_arith Int64.sub a b
  | "*", _, _ -> int_arith Int64.mul a b
  | "/", _, _ -> int_div a b
  | "%", _, _ -> int_rem a b
  | "<<", _, _ -> shift `L a b
  | ">>", _, _ -> shift `R a b
  | "&", _, _ -> bitop Int64.logand a b
  | "|", _, _ -> bitop Int64.logor a b
  | "^", _, _ -> bitop Int64.logxor a b
  | ("<" | "<=" | ">" | ">=" | "==" | "!="), _, _ ->
      let c = compare_vals a b in
      vbool
        (match op with
        | "<" -> c < 0
        | "<=" -> c <= 0
        | ">" -> c > 0
        | ">=" -> c >= 0
        | "==" -> c = 0
        | _ -> c <> 0)
  | _ -> err "unknown binary operator %s" op

let unop op v =
  match (op, v) with
  | "-", VF x -> VF (-.x)
  | "-", VI _ -> (
      match promote v with
      | VI (t, x) -> VI (t, normalize t (Int64.neg x))
      | _ -> assert false)
  | "+", _ -> promote v
  | "!", _ -> vbool (not (truth v))
  | "~", VI _ -> (
      match promote v with
      | VI (t, x) -> VI (t, normalize t (Int64.lognot x))
      | _ -> assert false)
  | _ -> err "unary operator %s on this operand" op

let to_string = function
  | VF x -> Printf.sprintf "%.17g" x
  | VI (t, v) ->
      Printf.sprintf "%Ld:%c%d" v (if t.signed then 'i' else 'u') t.bits
