let () =
  Alcotest.run "ecsd"
    [
      ("fixpt", Test_fixpt.suite);
      ("types", Test_types.suite);
      ("ode", Test_ode.suite);
      ("plant", Test_plant.suite);
      ("control", Test_control.suite);
      ("model-engine", Test_model_engine.suite);
      ("blocks", Test_blocks.suite);
      ("statechart", Test_statechart.suite);
      ("mcu", Test_mcu.suite);
      ("beans", Test_beans.suite);
      ("comm", Test_comm.suite);
      ("peert", Test_peert.suite);
      ("pil", Test_pil.suite);
      ("servo", Test_servo.suite);
      ("report", Test_report.suite);
      ("timing", Test_timing.suite);
      ("autosar", Test_autosar.suite);
      ("hil", Test_hil.suite);
      ("workspace", Test_workspace.suite);
      ("fuzz", Test_model_fuzz.suite);
      ("sim-target", Test_sim_target.suite);
      ("rta", Test_rta.suite);
      ("golden", Test_golden.suite);
      ("misc", Test_misc.suite);
      ("obs", Test_obs.suite);
      ("sim-golden", Test_sim_golden.suite);
      ("analysis", Test_analysis.suite);
      ("mir", Test_mir.suite);
      ("silvm", Test_silvm.suite);
      ("silvm-compile", Test_silvm_compile.suite);
      ("fault", Test_fault.suite);
      ("exec", Test_exec.suite);
      ("supervise", Test_supervise.suite);
      ("flight", Test_flight.suite);
    ]
