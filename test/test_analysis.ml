(* The static-analysis engine: Compile.diagnose, interval soundness,
   the FXP/CON/MIS rule families and the check driver's report. *)

let contains = Astring_contains.contains

(* ---- Compile.diagnose: collects everything, never raises ---- *)

let test_diagnose_collects () =
  let m = Model.create "broken" in
  let g1 = Model.add m (Math_blocks.gain 2.0) in
  let g2 = Model.add m (Math_blocks.sum "++") in
  ignore g1;
  ignore g2;
  let diags = Compile.diagnose m in
  (* three unconnected inputs across two blocks, all collected at once *)
  Alcotest.(check int) "three diagnostics" 3 (List.length diags);
  List.iter
    (fun d ->
      match d.Compile.d_kind with
      | Compile.Unconnected_input _ -> ()
      | _ -> Alcotest.fail "expected Unconnected_input")
    diags;
  (* compile still raises, with the FIRST collected diagnostic's text *)
  (match Compile.compile ~default_dt:0.01 m with
  | _ -> Alcotest.fail "compile should raise"
  | exception Compile.Compile_error msg ->
      Alcotest.(check string)
        "raise matches first diag" (List.hd diags).Compile.d_msg msg);
  (* a clean model diagnoses empty *)
  let ok = Model.create "ok" in
  let s = Model.add ok (Sources.constant 1.0) in
  let g = Model.add ok (Math_blocks.gain 2.0) in
  Model.connect ok ~src:(s, 0) ~dst:(g, 0);
  Alcotest.(check int) "clean model" 0 (List.length (Compile.diagnose ok))

let test_diagnose_loop () =
  let m = Model.create "loop" in
  let a = Model.add m (Math_blocks.gain 0.5) in
  let b = Model.add m (Math_blocks.gain 0.5) in
  Model.connect m ~src:(a, 0) ~dst:(b, 0);
  Model.connect m ~src:(b, 0) ~dst:(a, 0);
  match Compile.diagnose m with
  | [ { Compile.d_kind = Compile.Algebraic_loop names; _ } ] ->
      Alcotest.(check bool) "both blocks named" true (List.length names >= 2)
  | _ -> Alcotest.fail "expected one Algebraic_loop diagnostic"

(* ---- interval soundness: simulated values stay inside ---- *)

(* Same safe palette as the model fuzzer: bounded parameters so acyclic
   compositions cannot blow up. *)
let palette rng =
  let pick l =
    List.nth l
      (QCheck2.Gen.generate1 ~rand:rng
         (QCheck2.Gen.int_bound (List.length l - 1)))
  in
  let g = QCheck2.Gen.generate1 ~rand:rng in
  pick
    [
      (fun () -> Sources.constant (g (QCheck2.Gen.float_range (-2.0) 2.0)));
      (fun () ->
        Sources.step
          ~t_step:(g (QCheck2.Gen.float_range 0.0 0.5))
          ~after:(g (QCheck2.Gen.float_range (-1.0) 1.0))
          ());
      (fun () -> Sources.sine ~amp:(g (QCheck2.Gen.float_range 0.1 2.0)) ());
      (fun () -> Math_blocks.gain (g (QCheck2.Gen.float_range (-0.9) 0.9)));
      (fun () -> Math_blocks.sum "+-");
      (fun () -> Math_blocks.abs_block);
      (fun () -> Math_blocks.min_block);
      (fun () -> Nonlinear_blocks.saturation ~lo:(-3.0) ~hi:3.0);
      (fun () -> Nonlinear_blocks.quantizer ~interval:0.25);
      (fun () -> Discrete_blocks.unit_delay ());
      (fun () -> Discrete_blocks.moving_average 3);
      (fun () -> Discrete_blocks.zoh ~period:0.01 ());
      (fun () -> Math_blocks.cast Dtype.Int16);
    ]
    ()

let random_dag ~seed ~size =
  let rng = Random.State.make [| seed |] in
  let m = Model.create (Printf.sprintf "rfuzz%d" seed) in
  let outputs = ref [] in
  let s1 = Model.add m (Sources.constant 1.0) in
  let s2 = Model.add m (Sources.sine ()) in
  outputs := [ (s1, 0); (s2, 0) ];
  for _ = 1 to size do
    let spec = palette rng in
    let blk = Model.add m spec in
    for p = 0 to spec.Block.n_in - 1 do
      let src =
        List.nth !outputs (Random.State.int rng (List.length !outputs))
      in
      Model.connect m ~src ~dst:(blk, p)
    done;
    for p = 0 to spec.Block.n_out - 1 do
      outputs := (blk, p) :: !outputs
    done
  done;
  m

let prop_intervals_sound =
  QCheck2.Test.make
    ~name:"simulated values lie inside the computed intervals" ~count:60
    QCheck2.Gen.(pair (int_range 1 10000) (int_range 1 20))
    (fun (seed, size) ->
      let m = random_dag ~seed ~size in
      let comp = Compile.compile ~default_dt:0.01 m in
      let ranges = Range.analyze comp in
      let sim = Sim.create comp in
      let ports =
        List.concat_map
          (fun b ->
            let spec = Model.spec_of m b in
            List.init spec.Block.n_out (fun p -> (b, p)))
          (Model.blocks m)
      in
      List.iter (Sim.probe sim) ports;
      Sim.run sim ~until:0.5 ();
      List.for_all
        (fun port ->
          match Range.interval ranges port with
          | None -> false (* executed ports must not be bottom *)
          | Some { Range.lo; hi } ->
              let tol =
                1e-6
                *. Float.max 1.0
                     (Float.max (Float.abs lo) (Float.abs hi))
              in
              let tol = if Float.is_finite tol then tol else 0.0 in
              List.for_all
                (fun (_, v) ->
                  (not (Float.is_finite v))
                  || (v >= lo -. tol && v <= hi +. tol))
                (Sim.trace sim port))
        ports)

(* ---- the seeded Q15 overflow on the fixed-point servo (E2) ---- *)

let fixed_servo () =
  let built =
    Servo_system.build
      ~config:
        { Servo_system.default_config with
          Servo_system.variant = Servo_system.Fixed_pid }
      ()
  in
  (built.Servo_system.controller, built.Servo_system.project)

let test_fxp002_servo () =
  let model, project = fixed_servo () in
  let report = Check.run ~project model in
  let overflow =
    List.filter
      (fun f -> f.Diag.rule = "FXP002" && f.Diag.subject = "pid")
      report.Check.findings
  in
  Alcotest.(check int) "one FXP002 on pid" 1 (List.length overflow);
  let f = List.hd overflow in
  Alcotest.(check bool) "error severity" true (f.Diag.severity = Diag.Error);
  Alcotest.(check bool) "names the Q format" true (contains f.Diag.detail "Q15");
  Alcotest.(check int) "strict exit 1" 1 (Check.exit_code ~strict:true report);
  Alcotest.(check int) "lenient exit 0" 0 (Check.exit_code ~strict:false report);
  (* the float variant of the same controller carries no FXP error *)
  let built = Servo_system.build () in
  let clean = Check.run ~project:built.Servo_system.project
      built.Servo_system.controller in
  Alcotest.(check int) "float servo clean" 0 (Check.errors clean)

let test_fxp_suppression () =
  let model, project = fixed_servo () in
  let sup =
    match Diag.parse_suppression "pid:FXP002" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let report = Check.run ~project ~suppress:[ sup ] model in
  Alcotest.(check int) "suppressed -> no errors" 0 (Check.errors report);
  Alcotest.(check int) "strict exit 0" 0 (Check.exit_code ~strict:true report);
  (* the finding is marked, not dropped *)
  Alcotest.(check bool) "still reported" true
    (List.exists
       (fun f -> f.Diag.rule = "FXP002" && f.Diag.suppressed)
       report.Check.findings);
  Alcotest.(check bool) "render flags it" true
    (contains (Check.render report) "[suppressed]")

(* ---- the injected ISR shared-state hazard ---- *)

let test_concurrency_demo () =
  let model, project = Check.hazard_demo () in
  let rtc = Check.run ~project model in
  let has rule l = List.exists (fun f -> f.Diag.rule = rule) l in
  Alcotest.(check bool) "CON002 info under run-to-completion" true
    (has "CON002" rtc.Check.findings);
  Alcotest.(check bool) "no CON001 when non-preemptive" false
    (has "CON001" rtc.Check.findings);
  Alcotest.(check bool) "CON003 torn double on 16-bit word" true
    (has "CON003" rtc.Check.findings);
  let pre = Check.run ~project ~preemptive:true model in
  let races =
    List.filter (fun f -> f.Diag.rule = "CON001") pre.Check.findings
  in
  Alcotest.(check int) "two unprotected signals when preemptive" 2
    (List.length races);
  Alcotest.(check int) "preemptive strict exit 1" 1
    (Check.exit_code ~strict:true pre)

(* ---- MISRA lint: seeded violations and generated-code cleanliness ---- *)

let test_misra_detects () =
  let open C_ast in
  let bad =
    {
      ret = I16;
      fname = "bad";
      args = [ (I32, "x") ];
      body =
        [
          Decl (I16, "y", Some (Var "x"));
          (* narrowing I32 -> I16 *)
          If
            ( Bin (">", Var "x", Int_lit 0),
              [
                Decl (I32, "x", Some (Int_lit 1));
                (* shadows the argument *)
                Return (Some (Var "y"));
              ],
              [] );
          Return (Some (Int_lit 0));
          (* second exit point *)
        ];
      fcomment = None;
      static = false;
    }
  in
  let cu = { unit_name = "bad.c"; items = [ Func_def bad ] } in
  let fs = Misra.lint [ cu ] in
  let has rule = List.exists (fun f -> f.Diag.rule = rule) fs in
  Alcotest.(check bool) "MIS001 two returns" true (has "MIS001");
  Alcotest.(check bool) "MIS002 shadowing" true (has "MIS002");
  Alcotest.(check bool) "MIS003 narrowing" true (has "MIS003")

let test_misra_generated_clean () =
  (* every generated unit for the E4 MCU sweep lints free of MISRA
     errors and warnings (MIS005 escape-hatch infos are expected: the
     support runtimes carry verbatim items). mc9s12dp256 has no
     quadrature decoder, so its build may be rejected -- that is the E4
     experiment's own finding, not a lint failure. *)
  List.iter
    (fun mcu ->
      let cfg = { Servo_system.default_config with Servo_system.mcu } in
      match Servo_system.build ~config:cfg () with
      | exception _ -> ()
      | built -> (
          let comp =
            Compile.compile ~default_dt:cfg.Servo_system.control_period
              built.Servo_system.controller
          in
          match
            Target.generate ~name:"servo_ctl"
              ~project:built.Servo_system.project comp
          with
          | exception Target.Codegen_error _ -> ()
          | arts ->
              let units =
                arts.Target.model_h :: arts.Target.model_c
                :: arts.Target.main_c :: arts.Target.hal
              in
              let offenders =
                List.filter
                  (fun f -> f.Diag.severity <> Diag.Info)
                  (Misra.lint units)
              in
              List.iter
                (fun f ->
                  Printf.printf "%s: %s %s %s\n" mcu.Mcu_db.name f.Diag.rule
                    f.Diag.subject f.Diag.detail)
                offenders;
              Alcotest.(check int)
                (Printf.sprintf "%s lints clean" mcu.Mcu_db.name)
                0 (List.length offenders)))
    [ Mcu_db.mc56f8367; Mcu_db.mcf5213; Mcu_db.mc9s12dp256 ]

(* ---- report rendering and the JSON document ---- *)

let test_render_and_json () =
  let model, project = fixed_servo () in
  let report = Check.run ~project model in
  let text = Check.render report in
  Alcotest.(check bool) "header names model" true
    (contains text "check servo_ctl:");
  Alcotest.(check bool) "lists the overflow" true (contains text "FXP002");
  let json = Bench_json.to_string (Check.to_json report) in
  let doc = Bench_json.parse json in
  let str k =
    match Bench_json.member k doc with
    | Some (Bench_json.Str s) -> s
    | _ -> Alcotest.fail (k ^ " missing")
  in
  let num k =
    match Bench_json.member k doc with
    | Some (Bench_json.Int n) -> n
    | _ -> Alcotest.fail (k ^ " missing")
  in
  Alcotest.(check string) "schema" "ecsd-check-1" (str "schema");
  Alcotest.(check string) "model" "servo_ctl" (str "model");
  Alcotest.(check int) "one error" 1 (num "errors");
  match Bench_json.member "findings" doc with
  | Some (Bench_json.Arr fs) ->
      Alcotest.(check bool) "findings serialised" true (List.length fs > 0);
      let rule_of f =
        match Bench_json.member "rule" f with
        | Some (Bench_json.Str s) -> s
        | _ -> ""
      in
      Alcotest.(check bool) "FXP002 present" true
        (List.exists (fun f -> rule_of f = "FXP002") fs)
  | _ -> Alcotest.fail "findings array missing"

let test_rule_selection () =
  let model, project = fixed_servo () in
  let report = Check.run ~rules:[ "FXP" ] ~project model in
  Alcotest.(check bool) "only FXP family" true
    (List.for_all
       (fun f -> String.sub f.Diag.rule 0 3 = "FXP")
       report.Check.findings);
  Alcotest.(check bool) "overflow retained" true
    (List.exists (fun f -> f.Diag.rule = "FXP002") report.Check.findings)

(* `ecsd check MODELS --jobs N` shards models over a domain pool; the
   rendered reports must be byte-identical to the serial run whatever
   the worker count. Exercised here at the library level: the same
   Check.run per model, serial vs Exec_pool, compared as one string. *)
let test_check_jobs_byte_identical () =
  let check_one name =
    match name with
    | "plant" ->
        Check.run (Servo_system.plant_model Servo_system.default_config)
    | "isr-demo" ->
        let m, p = Check.hazard_demo () in
        Check.run ~project:p m
    | _ ->
        let b = Servo_system.build () in
        Check.run ~project:b.Servo_system.project b.Servo_system.controller
  in
  let names = [| "servo"; "plant"; "isr-demo" |] in
  let render reports =
    String.concat "" (Array.to_list (Array.map Check.render reports))
  in
  let serial = render (Array.map check_one names) in
  let pooled =
    render
      (Exec_pool.with_pool ~workers:3 (fun pool ->
           Exec_pool.run_map pool ~chunk:1 (Array.length names) (fun i ->
               check_one names.(i))))
  in
  Alcotest.(check string) "jobs 1 vs 3 byte-identical" serial pooled

let suite =
  [
    Alcotest.test_case "diagnose collects" `Quick test_diagnose_collects;
    Alcotest.test_case "diagnose loop" `Quick test_diagnose_loop;
    QCheck_alcotest.to_alcotest prop_intervals_sound;
    Alcotest.test_case "FXP002 servo overflow" `Quick test_fxp002_servo;
    Alcotest.test_case "suppression" `Quick test_fxp_suppression;
    Alcotest.test_case "ISR hazard demo" `Quick test_concurrency_demo;
    Alcotest.test_case "MISRA seeded violations" `Quick test_misra_detects;
    Alcotest.test_case "MISRA generated units" `Quick test_misra_generated_clean;
    Alcotest.test_case "render + JSON" `Quick test_render_and_json;
    Alcotest.test_case "rule selection" `Quick test_rule_selection;
    Alcotest.test_case "check --jobs is byte-identical" `Quick
      test_check_jobs_byte_identical;
  ]
