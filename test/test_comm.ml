(* PIL link: CRC, packet framing, receive state machine. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_crc_known_vector () =
  (* CRC-16/CCITT-FALSE of "123456789" is 0x29B1 *)
  check_int "check value" 0x29B1 (Crc16.of_string "123456789")

let test_crc_sensitivity () =
  let a = Crc16.of_bytes [ 1; 2; 3 ] and b = Crc16.of_bytes [ 1; 2; 4 ] in
  check_bool "differs on single bit" true (a <> b);
  let c = Crc16.of_bytes [ 2; 1; 3 ] in
  check_bool "order sensitive" true (a <> c)

let roundtrip pkt =
  let got = ref None in
  let f = Framer.create ~on_packet:(fun p -> got := Some p) in
  Framer.feed_all f (Packet.encode pkt);
  !got

let test_packet_roundtrip () =
  let pkt = { Packet.ptype = Packet.ptype_sensor; seq = 7; payload = [ 1; 2; 250 ] } in
  match roundtrip pkt with
  | Some p ->
      check_int "type" pkt.Packet.ptype p.Packet.ptype;
      check_int "seq" pkt.Packet.seq p.Packet.seq;
      Alcotest.(check (list int)) "payload" pkt.Packet.payload p.Packet.payload
  | None -> Alcotest.fail "no packet decoded"

let test_stuffing_roundtrip () =
  (* payload containing both the flag and the escape byte *)
  let pkt =
    { Packet.ptype = Packet.ptype_actuator; seq = 0x7E;
      payload = [ 0x7E; 0x7D; 0x00; 0x7E ] }
  in
  let wire = Packet.encode pkt in
  (* no unescaped flags after the first byte *)
  check_bool "no inner SOF" true
    (not (List.exists (fun b -> b = Packet.sof) (List.tl wire)));
  match roundtrip pkt with
  | Some p -> Alcotest.(check (list int)) "payload" pkt.Packet.payload p.Packet.payload
  | None -> Alcotest.fail "no packet decoded"

let test_corruption_detected () =
  let pkt = { Packet.ptype = 1; seq = 1; payload = [ 10; 20; 30 ] } in
  let wire = Packet.encode pkt in
  (* flip a payload bit *)
  let corrupted = List.mapi (fun i b -> if i = 5 then b lxor 0x40 else b) wire in
  let got = ref None in
  let f = Framer.create ~on_packet:(fun p -> got := Some p) in
  Framer.feed_all f corrupted;
  check_bool "dropped" true (!got = None);
  check_int "crc error counted" 1 (Framer.crc_errors f)

let test_resync_after_garbage () =
  let pkt = { Packet.ptype = 2; seq = 9; payload = [ 5 ] } in
  let got = ref 0 in
  let f = Framer.create ~on_packet:(fun _ -> incr got) in
  Framer.feed_all f [ 0x12; 0x34; 0x56 ];
  Framer.feed_all f (Packet.encode pkt);
  check_int "recovered" 1 !got;
  check_int "garbage counted" 3 (Framer.dropped_bytes f)

let test_back_to_back_packets () =
  let p1 = { Packet.ptype = 1; seq = 1; payload = [ 1; 2 ] } in
  let p2 = { Packet.ptype = 2; seq = 2; payload = [ 3; 4 ] } in
  let got = ref [] in
  let f = Framer.create ~on_packet:(fun p -> got := p :: !got) in
  Framer.feed_all f (Packet.encode p1 @ Packet.encode p2);
  check_int "both decoded" 2 (List.length !got);
  check_int "ok counter" 2 (Framer.packets_ok f)

let test_truncated_frame_resync () =
  let p1 = { Packet.ptype = 1; seq = 1; payload = [ 1; 2; 3; 4 ] } in
  let wire = Packet.encode p1 in
  let truncated = List.filteri (fun i _ -> i < List.length wire - 3) wire in
  let got = ref 0 in
  let f = Framer.create ~on_packet:(fun _ -> incr got) in
  Framer.feed_all f truncated;
  (* a fresh complete frame right after must still decode *)
  Framer.feed_all f (Packet.encode p1);
  check_int "recovered after truncation" 1 !got

let test_payload_helpers () =
  let acc = Packet.push_u16 0x1234 (Packet.push_u8 0xAB []) in
  let payload = Packet.finish_payload acc in
  Alcotest.(check (list int)) "layout" [ 0xAB; 0x12; 0x34 ] payload;
  let v8, rest = Packet.take_u8 payload in
  check_int "u8" 0xAB v8;
  let v16, rest = Packet.take_u16 rest in
  check_int "u16" 0x1234 v16;
  check_bool "consumed" true (rest = []);
  check_int "signed" (-1) (Packet.u16_to_signed 0xFFFF);
  check_int "unsigned" 0xFFFF (Packet.signed_to_u16 (-1))

let test_encode_validation () =
  (match Packet.encode { Packet.ptype = 1; seq = 0; payload = [ 300 ] } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "byte range unchecked");
  match
    Packet.encode { Packet.ptype = 1; seq = 0; payload = List.init 300 (fun _ -> 0) }
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "payload length unchecked"

let test_wire_length () =
  let pkt = { Packet.ptype = 1; seq = 0; payload = [ 1; 2; 3; 4 ] } in
  (* SOF + type + seq + len + 4 payload + 2 crc = 10 when nothing stuffs *)
  check_bool "at least raw size" true (Packet.wire_length pkt >= 10)

let gen_packet =
  QCheck2.Gen.(
    let* ptype = int_range 0 255 in
    let* seq = int_range 0 255 in
    let* payload = list_size (int_range 0 64) (int_range 0 255) in
    return { Packet.ptype; seq; payload })

let prop_roundtrip =
  QCheck2.Test.make ~name:"encode/decode roundtrip for arbitrary packets"
    ~count:300 gen_packet (fun pkt ->
      match roundtrip pkt with
      | Some p ->
          p.Packet.ptype = pkt.Packet.ptype
          && p.Packet.seq = pkt.Packet.seq
          && p.Packet.payload = pkt.Packet.payload
      | None -> false)

let prop_byte_at_a_time =
  QCheck2.Test.make ~name:"framer is incremental (byte-at-a-time = batch)"
    ~count:100 gen_packet (fun pkt ->
      let got = ref None in
      let f = Framer.create ~on_packet:(fun p -> got := Some p) in
      List.iter (fun b -> Framer.feed f b) (Packet.encode pkt);
      !got = Some pkt)

(* ---- fault injection through the Faulty channel wrapper ---- *)

(* payload derived from the sequence number, so a delivered packet can
   be checked against what was actually sent *)
let pattern_packet seq =
  {
    Packet.ptype = Packet.ptype_sensor;
    seq = seq land 0xFF;
    payload = List.init 6 (fun i -> ((seq * 7) + (i * 31)) land 0xFF);
  }

let is_genuine p = p = pattern_packet p.Packet.seq

(* acceptance bar: >= 1e5 frames at 1% per-byte corruption, and not one
   of them mis-parses -- every delivered packet is byte-identical to a
   sent one, everything else is dropped and counted *)
let test_no_misparse_under_corruption () =
  let frames = 100_000 in
  let delivered = ref 0 and misparsed = ref 0 in
  let f =
    Framer.create ~on_packet:(fun p ->
        incr delivered;
        if not (is_genuine p) then incr misparsed)
  in
  let chan =
    Faulty.create
      { Faulty.clean with Faulty.corrupt_rate = 0.01; seed = 20260806 }
      ~sink:(fun b -> Framer.feed f b)
  in
  for seq = 0 to frames - 1 do
    Faulty.send_all chan (Packet.encode (pattern_packet seq))
  done;
  Faulty.flush chan;
  check_int "no mis-parsed frame" 0 !misparsed;
  check_bool "corruption actually injected" true (Faulty.corrupted chan > 10_000);
  check_bool "damaged frames rejected" true (Framer.crc_errors f > 0);
  (* ~12 wire bytes/frame at 1%: most frames still get through *)
  check_bool "most frames survive" true (!delivered > frames / 2);
  check_bool "some frames lost" true (!delivered < frames)

(* drops: the framer must resynchronise on the next start flag. First the
   precise claim — an isolated drop, wherever it lands in the frame, loses
   at most that frame plus the one already in flight; the next clean frame
   always decodes *)
let test_resync_isolated_drop () =
  let wire seq = Packet.encode (pattern_packet seq) in
  let damaged = wire 1 in
  List.iteri
    (fun pos _ ->
      let got = ref [] in
      let f = Framer.create ~on_packet:(fun p -> got := p.Packet.seq :: !got) in
      Framer.feed_all f (wire 0);
      Framer.feed_all f (List.filteri (fun i _ -> i <> pos) damaged);
      Framer.feed_all f (wire 2);
      Framer.feed_all f (wire 3);
      let seqs = List.rev !got in
      check_bool
        (Printf.sprintf "frames around a drop at byte %d decode" pos)
        true
        (List.mem 0 seqs && List.mem 2 seqs && List.mem 3 seqs))
    damaged

(* and the aggregate claim under random drops: each drop event costs at
   most two frames (the damaged one and the one being hunted through), so
   delivery never falls below sent - 2*drops *)
let test_resync_after_random_drops () =
  let got = ref [] in
  let f = Framer.create ~on_packet:(fun p -> got := p.Packet.seq :: !got) in
  let chan =
    Faulty.create
      { Faulty.clean with Faulty.drop_rate = 0.005; seed = 7 }
      ~sink:(fun b -> Framer.feed f b)
  in
  let sent = 2_000 in
  for seq = 0 to sent - 1 do
    Faulty.send_all chan (Packet.encode (pattern_packet seq))
  done;
  Faulty.flush chan;
  let drops = Faulty.dropped chan in
  check_bool "bytes were dropped" true (drops > 20);
  check_bool
    (Printf.sprintf "at most two frames lost per drop (%d delivered, %d drops)"
       (List.length !got) drops)
    true
    (List.length !got >= sent - (2 * drops))

(* duplicated and reordered bytes: never a mis-parse, only rejections *)
let test_dup_and_delay_never_misparse () =
  let misparsed = ref 0 and delivered = ref 0 in
  let f =
    Framer.create ~on_packet:(fun p ->
        incr delivered;
        if not (is_genuine p) then incr misparsed)
  in
  let chan =
    Faulty.create
      { Faulty.clean with Faulty.dup_rate = 0.01; delay_rate = 0.01; seed = 99 }
      ~sink:(fun b -> Framer.feed f b)
  in
  for seq = 0 to 19_999 do
    Faulty.send_all chan (Packet.encode (pattern_packet seq))
  done;
  Faulty.flush chan;
  check_int "no mis-parsed frame" 0 !misparsed;
  check_bool "faults injected" true
    (Faulty.duplicated chan > 0 && Faulty.delayed chan > 0);
  check_bool "most frames survive" true (!delivered > 10_000)

(* the identity channel is exactly transparent *)
let test_clean_channel_transparent () =
  let got = ref 0 in
  let f = Framer.create ~on_packet:(fun p ->
      if is_genuine p then incr got) in
  let chan = Faulty.create Faulty.clean ~sink:(fun b -> Framer.feed f b) in
  for seq = 0 to 99 do
    Faulty.send_all chan (Packet.encode (pattern_packet seq))
  done;
  check_int "all delivered" 100 !got;
  check_int "no faults" 0
    (Faulty.corrupted chan + Faulty.dropped chan + Faulty.duplicated chan
   + Faulty.delayed chan)

let suite =
  [
    Alcotest.test_case "crc known vector" `Quick test_crc_known_vector;
    Alcotest.test_case "crc sensitivity" `Quick test_crc_sensitivity;
    Alcotest.test_case "packet roundtrip" `Quick test_packet_roundtrip;
    Alcotest.test_case "stuffing" `Quick test_stuffing_roundtrip;
    Alcotest.test_case "corruption detected" `Quick test_corruption_detected;
    Alcotest.test_case "resync after garbage" `Quick test_resync_after_garbage;
    Alcotest.test_case "back-to-back" `Quick test_back_to_back_packets;
    Alcotest.test_case "truncated resync" `Quick test_truncated_frame_resync;
    Alcotest.test_case "payload helpers" `Quick test_payload_helpers;
    Alcotest.test_case "encode validation" `Quick test_encode_validation;
    Alcotest.test_case "wire length" `Quick test_wire_length;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_byte_at_a_time;
    Alcotest.test_case "fault: 1e5 frames at 1% corruption, no mis-parse"
      `Slow test_no_misparse_under_corruption;
    Alcotest.test_case "fault: resync within one frame of an isolated drop"
      `Quick test_resync_isolated_drop;
    Alcotest.test_case "fault: bounded loss under random drops" `Quick
      test_resync_after_random_drops;
    Alcotest.test_case "fault: dup/reorder never mis-parse" `Quick
      test_dup_and_delay_never_misparse;
    Alcotest.test_case "fault: clean channel transparent" `Quick
      test_clean_channel_transparent;
  ]
