(* The campaign job engine: Chase-Lev deque laws (sequential and under
   4 domains), fork-join pool semantics, the compile cache, and the
   deterministic observability-sink merge. *)

let () = Random.self_init ()

(* ---- wsdeque, owner-only: push/pop is LIFO, steal is FIFO ---- *)

let test_deque_lifo () =
  let q = Wsdeque.create ~capacity:2 () in
  for i = 1 to 100 do
    Wsdeque.push q i
  done;
  Alcotest.(check int) "size" 100 (Wsdeque.size q);
  for i = 100 downto 1 do
    Alcotest.(check (option int)) "pop order" (Some i) (Wsdeque.pop q)
  done;
  Alcotest.(check (option int)) "empty pop" None (Wsdeque.pop q);
  Alcotest.(check (option int)) "empty steal" None (Wsdeque.steal q)

let test_deque_steal_fifo () =
  let q = Wsdeque.create () in
  for i = 1 to 50 do
    Wsdeque.push q i
  done;
  for i = 1 to 20 do
    Alcotest.(check (option int)) "steal order" (Some i) (Wsdeque.steal q)
  done;
  (* owner pops the newest of what remains *)
  Alcotest.(check (option int)) "pop after steals" (Some 50) (Wsdeque.pop q)

(* qcheck: any interleaving of owner pushes and pops behaves like a
   stack over the not-yet-stolen suffix; we model with a list *)
let test_deque_model =
  QCheck.Test.make ~count:500 ~name:"wsdeque sequential model"
    QCheck.(list (int_bound 2))
    (fun ops ->
      let q = Wsdeque.create ~capacity:1 () in
      let stack = ref [] and fifo = ref [] and next = ref 0 in
      List.iter
        (fun op ->
          match op with
          | 0 ->
              incr next;
              Wsdeque.push q !next;
              stack := !next :: !stack
          | 1 -> (
              let expect =
                match !stack with
                | [] -> None
                | x :: rest ->
                    stack := rest;
                    Some x
              in
              match (Wsdeque.pop q, expect) with
              | Some a, Some b when a = b -> ()
              | None, None -> ()
              | _ -> QCheck.Test.fail_report "pop mismatch")
          | _ -> (
              (* steal takes the oldest unstolen = last of !stack *)
              let expect =
                match List.rev !stack with
                | [] -> None
                | x :: rest_rev ->
                    stack := List.rev rest_rev;
                    fifo := x :: !fifo;
                    Some x
              in
              match (Wsdeque.steal q, expect) with
              | Some a, Some b when a = b -> ()
              | None, None -> ()
              | _ -> QCheck.Test.fail_report "steal mismatch"))
        ops;
      true)

(* ---- wsdeque under 4 domains: one owner pushing/popping, three
   thieves stealing; every pushed element is consumed exactly once ---- *)

let test_deque_domains () =
  let n = 20_000 in
  let q = Wsdeque.create () in
  let seen = Array.make (n + 1) 0 in
  let seen_mutex = Mutex.create () in
  let done_ = Atomic.make false in
  let stolen = Atomic.make 0 in
  let thief () =
    let local = ref [] in
    let rec go () =
      match Wsdeque.steal q with
      | Some v ->
          local := v :: !local;
          Atomic.incr stolen;
          go ()
      | None -> if not (Atomic.get done_) then go ()
    in
    go ();
    Mutex.lock seen_mutex;
    List.iter (fun v -> seen.(v) <- seen.(v) + 1) !local;
    Mutex.unlock seen_mutex
  in
  let thieves = Array.init 3 (fun _ -> Domain.spawn thief) in
  let popped = ref [] in
  for i = 1 to n do
    Wsdeque.push q i;
    if i mod 3 = 0 then
      match Wsdeque.pop q with
      | Some v -> popped := v :: !popped
      | None -> ()
  done;
  (* drain what the thieves left behind *)
  let rec drain () =
    match Wsdeque.pop q with
    | Some v ->
        popped := v :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Atomic.set done_ true;
  Array.iter Domain.join thieves;
  Mutex.lock seen_mutex;
  List.iter (fun v -> seen.(v) <- seen.(v) + 1) !popped;
  Mutex.unlock seen_mutex;
  for i = 1 to n do
    if seen.(i) <> 1 then
      Alcotest.failf "element %d consumed %d times" i seen.(i)
  done;
  Alcotest.(check bool) "thieves participated" true (Atomic.get stolen > 0)

(* ---- pool: run_map determinism, ordering, nesting, errors ---- *)

let test_pool_map () =
  Exec_pool.with_pool ~workers:4 @@ fun pool ->
  let r = Exec_pool.run_map pool 1000 (fun i -> i * i) in
  Alcotest.(check int) "length" 1000 (Array.length r);
  Array.iteri
    (fun i v -> if v <> i * i then Alcotest.failf "slot %d: %d" i v)
    r;
  (* a second batch on the same pool *)
  let r2 = Exec_pool.run_map pool 10 (fun i -> i + 1) in
  Alcotest.(check (array int)) "second batch" [| 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 |] r2;
  Alcotest.(check (array int)) "empty" [||] (Exec_pool.run_map pool 0 (fun i -> i))

let test_pool_chunked () =
  Exec_pool.with_pool ~workers:2 @@ fun pool ->
  let r = Exec_pool.run_map pool ~chunk:7 100 (fun i -> 2 * i) in
  Array.iteri (fun i v -> if v <> 2 * i then Alcotest.failf "slot %d" i) r

let test_pool_error () =
  Exec_pool.with_pool ~workers:3 @@ fun pool ->
  match
    Exec_pool.run_map pool 50 (fun i ->
        if i mod 7 = 3 then failwith (Printf.sprintf "boom %d" i) else i)
  with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure msg ->
      (* lowest failing index wins, deterministically *)
      Alcotest.(check string) "first failure" "boom 3" msg

let test_pool_submit () =
  Exec_pool.with_pool ~workers:2 @@ fun pool ->
  let hits = Atomic.make 0 in
  let total = 200 in
  let m = Mutex.create () and c = Condition.create () in
  for _ = 1 to total do
    Exec_pool.submit pool (fun () ->
        if Atomic.fetch_and_add hits 1 = total - 1 then begin
          Mutex.lock m;
          Condition.signal c;
          Mutex.unlock m
        end)
  done;
  Mutex.lock m;
  while Atomic.get hits < total do
    Condition.wait c m
  done;
  Mutex.unlock m;
  Alcotest.(check int) "all ran" total (Atomic.get hits)

(* ---- compile cache ---- *)

let servo_controller () =
  let built = Servo_system.build () in
  built.Servo_system.controller

let test_compile_cache () =
  Compile_cache.clear ();
  let m1 = servo_controller () in
  let m2 = servo_controller () in
  Alcotest.(check string)
    "independent builds digest equal" (Compile_cache.digest m1)
    (Compile_cache.digest m2);
  let c1 = Compile_cache.compile m1 in
  let c2 = Compile_cache.compile m2 in
  Alcotest.(check bool) "shared artifact" true (c1 == c2);
  let h, m, _ = Compile_cache.stats () in
  Alcotest.(check int) "one miss" 1 m;
  Alcotest.(check int) "one hit" 1 h;
  (* different config => different digest *)
  let fixed =
    Servo_system.build
      ~config:
        {
          Servo_system.default_config with
          Servo_system.variant = Servo_system.Fixed_pid;
        }
      ()
  in
  if
    Compile_cache.digest fixed.Servo_system.controller
    = Compile_cache.digest m1
  then Alcotest.fail "distinct configs must not collide";
  (* dt is part of the key *)
  let c3 = Compile_cache.compile ~default_dt:1e-4 m1 in
  Alcotest.(check bool) "dt keyed" true (c3 != c1);
  Compile_cache.clear ()

(* the cache must hand out simulable artifacts: same trajectory as a
   fresh compile *)
let test_compile_cache_simulates () =
  Compile_cache.clear ();
  let built = Servo_system.build () in
  let closed = built.Servo_system.closed_loop in
  let fresh = Compile.compile closed in
  let cached = Compile_cache.compile closed in
  let run comp =
    let sim = Sim.create ~solver_substeps:3 comp in
    Sim.run sim ~until:0.2 ();
    Value.to_float (Sim.value_named sim built.Servo_system.speed_block 0)
  in
  Alcotest.(check (float 0.0)) "identical trajectory" (run fresh) (run cached);
  Compile_cache.clear ()

(* bounded cache: FIFO eviction keeps at most max_entries artifacts and
   counts the victims *)
let test_compile_cache_eviction () =
  Compile_cache.clear ();
  Compile_cache.set_max_entries 1;
  Fun.protect
    ~finally:(fun () ->
      Compile_cache.set_max_entries 64;
      Compile_cache.clear ())
  @@ fun () ->
  let built = Servo_system.build () in
  let m1 = built.Servo_system.controller in
  let c1 = Compile_cache.compile m1 in
  (* same model under a different dt: a second key, evicting the first *)
  let _c2 = Compile_cache.compile ~default_dt:1e-4 m1 in
  let c1' = Compile_cache.compile m1 in
  Alcotest.(check bool) "evicted entry recompiled" true (c1 != c1');
  let hits, misses, evictions = Compile_cache.stats () in
  Alcotest.(check int) "no hits" 0 hits;
  Alcotest.(check int) "three misses" 3 misses;
  Alcotest.(check int) "two evictions" 2 evictions;
  (match Compile_cache.set_max_entries 0 with
  | () -> Alcotest.fail "set_max_entries 0 must be rejected"
  | exception Invalid_argument _ -> ())

(* ---- obs export merge: associativity + determinism ---- *)

let export_with f =
  Obs.reset ();
  Obs.set_enabled true;
  f ();
  let e = Obs.Export.of_local () in
  Obs.set_enabled false;
  Obs.reset ();
  e

let test_export_merge () =
  let ea =
    export_with (fun () ->
        Obs.incr_counter ~by:3 "m.a";
        Obs.incr_counter ~by:1 "m.b";
        Obs.record_named "m.h" 1.0;
        Obs.record_named "m.h" 2.0)
  in
  let eb =
    export_with (fun () ->
        Obs.incr_counter ~by:4 "m.b";
        Obs.incr_counter ~by:5 "m.c";
        Obs.record_named "m.h" 4.0)
  in
  let ec =
    export_with (fun () ->
        Obs.incr_counter ~by:10 "m.a";
        Obs.record_named "m.h2" 8.0)
  in
  let open Obs.Export in
  let l = merge (merge ea eb) ec and r = merge ea (merge eb ec) in
  Alcotest.(check (list (pair string int)))
    "associative counters" (counters l) (counters r);
  Alcotest.(check (list (pair string int)))
    "commutative counters" (counters (merge ea eb)) (counters (merge eb ea));
  Alcotest.(check (list (pair string int)))
    "totals"
    [ ("m.a", 13); ("m.b", 5); ("m.c", 5) ]
    (counters l);
  let hist_counts e = List.map (fun (n, s) -> (n, s.Obs.hs_count)) (hists e) in
  Alcotest.(check (list (pair string int)))
    "associative hists" (hist_counts l) (hist_counts r);
  Alcotest.(check (list (pair string int)))
    "hist totals"
    [ ("m.h", 3); ("m.h2", 1) ]
    (hist_counts l);
  (match List.assoc_opt "m.h" (hists l) with
  | Some s ->
      Alcotest.(check (float 1e-9)) "hist sum exact mean" (7.0 /. 3.0) s.Obs.hs_mean;
      Alcotest.(check (float 1e-9)) "hist min" 1.0 s.Obs.hs_min;
      Alcotest.(check (float 1e-9)) "hist max" 4.0 s.Obs.hs_max
  | None -> Alcotest.fail "m.h missing");
  (* neutral element *)
  Alcotest.(check (list (pair string int)))
    "empty neutral" (counters l)
    (counters (merge empty l))

(* any permutation of exports merges to the same totals *)
let test_export_merge_deterministic =
  QCheck.Test.make ~count:100 ~name:"export merge order-independent"
    QCheck.(list (pair (int_bound 3) (int_range 1 5)))
    (fun entries ->
      let exports =
        List.map
          (fun (k, v) ->
            export_with (fun () ->
                Obs.incr_counter ~by:v (Printf.sprintf "perm.c%d" k);
                Obs.record_named "perm.h" (float_of_int v)))
          entries
      in
      let open Obs.Export in
      let fwd = List.fold_left merge empty exports in
      let rev = List.fold_left merge empty (List.rev exports) in
      counters fwd = counters rev
      && List.map (fun (n, s) -> (n, s.Obs.hs_count)) (hists fwd)
         = List.map (fun (n, s) -> (n, s.Obs.hs_count)) (hists rev))

(* workers' published counts reach the spawning domain's snapshot *)
let test_publish_across_domains () =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    (fun () ->
      let c = Obs.counter "pub.xdomain" in
      Exec_pool.with_pool ~workers:4 (fun pool ->
          ignore
            (Exec_pool.run_map pool 100 (fun i ->
                 Obs.add c 1;
                 i)));
      Alcotest.(check int) "all increments visible" 100 (Obs.counter_value c))

let qt t = QCheck_alcotest.to_alcotest t

let suite =
  [
    Alcotest.test_case "wsdeque LIFO pop" `Quick test_deque_lifo;
    Alcotest.test_case "wsdeque FIFO steal" `Quick test_deque_steal_fifo;
    qt test_deque_model;
    Alcotest.test_case "wsdeque 4-domain consume-once" `Quick test_deque_domains;
    Alcotest.test_case "pool run_map" `Quick test_pool_map;
    Alcotest.test_case "pool chunked" `Quick test_pool_chunked;
    Alcotest.test_case "pool lowest-index error" `Quick test_pool_error;
    Alcotest.test_case "pool submit" `Quick test_pool_submit;
    Alcotest.test_case "compile cache dedup" `Quick test_compile_cache;
    Alcotest.test_case "compile cache simulates" `Quick
      test_compile_cache_simulates;
    Alcotest.test_case "compile cache eviction" `Quick
      test_compile_cache_eviction;
    Alcotest.test_case "export merge associative" `Quick test_export_merge;
    qt test_export_merge_deterministic;
    Alcotest.test_case "publish across domains" `Quick
      test_publish_across_domains;
  ]
