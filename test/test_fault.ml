(* Fault-injection subsystem: taxonomy windows, scenario parsing, the
   seeded injector, the safe-state supervisor campaign on the servo
   loop, MIL-vs-SIL lock-step under fault, and the CON004 watchdog
   rule. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ---- fault windows ---- *)

let test_fault_window () =
  let f = Fault.make ~at:0.5 ~duration:0.2 Fault.Sensor_dropout in
  check_bool "before onset" false (Fault.active f ~time:0.4);
  check_bool "at onset" true (Fault.active f ~time:0.5);
  check_bool "inside" true (Fault.active f ~time:0.69);
  check_bool "closed at end" false (Fault.active f ~time:0.7);
  Alcotest.(check (float 1e-9)) "clear time" 0.7 (Fault.clear_time f ~horizon:2.0);
  Alcotest.(check (float 1e-9)) "clear clamped" 0.6 (Fault.clear_time f ~horizon:0.6);
  let p = Fault.make ~every:0.5 ~at:0.1 ~duration:0.05 (Fault.Sensor_noise 10) in
  check_bool "first burst" true (Fault.active p ~time:0.12);
  check_bool "between bursts" false (Fault.active p ~time:0.3);
  check_bool "second burst" true (Fault.active p ~time:0.62);
  Alcotest.(check (float 1e-9)) "periodic never clears" 2.0
    (Fault.clear_time p ~horizon:2.0);
  let raises f = match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "negative onset rejected" true
    (raises (fun () -> Fault.make ~at:(-1.0) ~duration:0.1 Fault.Sensor_stuck));
  check_bool "zero duration rejected" true
    (raises (fun () -> Fault.make ~at:0.0 ~duration:0.0 Fault.Sensor_stuck));
  check_bool "period shorter than burst rejected" true
    (raises (fun () ->
         Fault.make ~every:0.05 ~at:0.0 ~duration:0.1 Fault.Sensor_stuck))

(* ---- scenario file format ---- *)

let test_scenario_parse () =
  let text =
    "# servo abuse\n\n\
     dropout at=0.5 duration=0.1\n\
     offset at=0.2 duration=0.3 slot=1 value=-30\n\
     noise at=0.1 duration=0.05 every=0.5 value=12\n\
     load at=1.0 duration=0.2 value=2.5e-3\n"
  in
  match Fault_scenario.of_string ~name:"abuse" text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok s ->
      check_string "name" "abuse" s.Fault_scenario.sname;
      check_int "faults" 4 (List.length s.Fault_scenario.faults);
      (match s.Fault_scenario.faults with
      | [ d; o; n; l ] ->
          check_bool "dropout kind" true (d.Fault.kind = Fault.Sensor_dropout);
          check_bool "offset kind" true (o.Fault.kind = Fault.Sensor_offset (-30));
          check_int "offset slot" 1 o.Fault.slot;
          check_bool "noise periodic" true (n.Fault.every = Some 0.5);
          check_bool "load kind" true (l.Fault.kind = Fault.Load_torque 2.5e-3)
      | _ -> Alcotest.fail "wrong fault order");
      Alcotest.(check (float 1e-9)) "onset" 0.1 (Fault_scenario.onset s);
      Alcotest.(check (float 1e-9)) "clear" 2.0
        (Fault_scenario.clear_time s ~horizon:2.0);
      (match Fault_scenario.active_names s ~time:0.55 with
      | [ n ] -> check_bool "dropout active at 0.55" true (contains "dropout" n)
      | l -> Alcotest.failf "expected one active fault, got %d" (List.length l));
      check_int "noise burst active at 0.12" 1
        (List.length (Fault_scenario.active_names s ~time:0.12))

let test_scenario_errors () =
  let expect_err text frag =
    match Fault_scenario.of_string ~name:"t" text with
    | Ok _ -> Alcotest.failf "accepted %S" text
    | Error e ->
        check_bool (Printf.sprintf "%S mentions %S (got %S)" text frag e) true
          (contains frag e)
  in
  expect_err "bogus at=1 duration=1" "unknown fault kind";
  expect_err "offset at=1 duration=1" "needs value=";
  expect_err "dropout duration=1" "missing at=";
  expect_err "dropout at=1" "missing duration=";
  expect_err "dropout at=x duration=1" "not a number";
  expect_err "dropout at=1 duration=1 junk" "stray token";
  expect_err "dropout at=1 duration=1 flavor=3" "unknown key";
  expect_err "dropout at=2 duration=1 every=0.5" "line 1";
  expect_err "# only comments\n\n" "no faults"

let test_builtins () =
  List.iter
    (fun name ->
      match Fault_scenario.find name with
      | Ok s -> check_string "resolves" name s.Fault_scenario.sname
      | Error e -> Alcotest.failf "builtin %s: %s" name e)
    [ "encoder-dropout"; "sensor-stuck"; "noise-burst"; "encoder-glitch";
      "actuator-jam"; "overrun-burst"; "wdog-suppress" ];
  match Fault_scenario.find "no-such-scenario" with
  | Ok _ -> Alcotest.fail "nonsense scenario resolved"
  | Error e ->
      check_bool "error lists builtins" true (contains "encoder-dropout" e)

(* ---- the seeded injector ---- *)

let scn faults = { Fault_scenario.sname = "test"; faults }

let test_injector_sensor () =
  let inj =
    Fault_inject.arm
      (scn [ Fault.make ~at:0.5 ~duration:0.2 (Fault.Sensor_offset 10) ])
  in
  check_int "inactive passthrough" 100
    (Fault_inject.sensor inj ~slot:0 ~time:0.1 100);
  check_int "offset applied" 110 (Fault_inject.sensor inj ~slot:0 ~time:0.6 100);
  check_int "other slot untouched" 100
    (Fault_inject.sensor inj ~slot:1 ~time:0.6 100);
  let drop =
    Fault_inject.arm (scn [ Fault.make ~at:0.5 ~duration:0.2 Fault.Sensor_dropout ])
  in
  check_int "dropout zeroes" 0 (Fault_inject.sensor drop ~slot:0 ~time:0.6 4321);
  (* stuck freezes the last clean code *)
  let stuck =
    Fault_inject.arm (scn [ Fault.make ~at:0.5 ~duration:0.2 Fault.Sensor_stuck ])
  in
  check_int "clean" 7 (Fault_inject.sensor stuck ~slot:0 ~time:0.4 7);
  check_int "frozen at last clean" 7
    (Fault_inject.sensor stuck ~slot:0 ~time:0.6 9);
  check_int "still frozen" 7 (Fault_inject.sensor stuck ~slot:0 ~time:0.65 12);
  check_int "released" 12 (Fault_inject.sensor stuck ~slot:0 ~time:0.8 12)

let test_injector_determinism () =
  let mk seed =
    Fault_inject.arm ~seed
      (scn [ Fault.make ~at:0.0 ~duration:1.0 (Fault.Sensor_noise 40) ])
  in
  let stream seed =
    let inj = mk seed in
    List.init 50 (fun k ->
        Fault_inject.sensor inj ~slot:0 ~time:(float_of_int k *. 1e-3) 1000)
  in
  check_bool "same seed replays exactly" true (stream 3 = stream 3);
  check_bool "different seed differs" true (stream 3 <> stream 4);
  check_bool "noise stays within amplitude" true
    (List.for_all (fun v -> abs (v - 1000) <= 40) (stream 3));
  (* actuator faults *)
  let jam =
    Fault_inject.arm (scn [ Fault.make ~at:0.0 ~duration:1.0 (Fault.Actuator_jam 1.0) ])
  in
  Alcotest.(check (float 1e-12)) "jam forces duty" 1.0
    (Fault_inject.duty jam ~time:0.5 0.2);
  let sat =
    Fault_inject.arm
      (scn [ Fault.make ~at:0.0 ~duration:1.0 (Fault.Actuator_saturation 0.3) ])
  in
  Alcotest.(check (float 1e-12)) "saturation clips" 0.3
    (Fault_inject.duty sat ~time:0.5 0.8);
  Alcotest.(check (float 1e-12)) "saturation passes small" 0.1
    (Fault_inject.duty sat ~time:0.5 0.1)

(* the injector memoizes the active sublist per window; every answer
   must still match the Fault.active predicate — across one-shot and
   periodic windows, and after non-monotonic queries (each campaign run
   rewinds time to zero) *)
let test_injector_cache_equivalence () =
  let f1 = Fault.make ~at:0.2 ~duration:0.2 (Fault.Sensor_offset 10) in
  let f2 =
    Fault.make ~every:0.5 ~at:0.05 ~duration:0.1 (Fault.Sensor_offset 300)
  in
  let inj = Fault_inject.arm (scn [ f1; f2 ]) in
  let expected time =
    List.fold_left
      (fun v f ->
        match f.Fault.kind with
        | Fault.Sensor_offset d when Fault.active f ~time -> v + d
        | _ -> v)
      1000 [ f1; f2 ]
  in
  for k = 0 to 1200 do
    let time = float_of_int k *. 1e-3 in
    check_int
      (Printf.sprintf "t=%g" time)
      (expected time)
      (Fault_inject.sensor inj ~slot:0 ~time 1000)
  done;
  (* rewinding time must invalidate the cached window *)
  check_int "rewound inside the one-shot window" 1010
    (Fault_inject.sensor inj ~slot:0 ~time:0.3 1000);
  check_int "rewound before every onset" 1000
    (Fault_inject.sensor inj ~slot:0 ~time:0.0 1000);
  (* next_transition edges are the exact float window bounds *)
  Alcotest.(check (float 0.0)) "edge: onset" 0.2
    (Fault.next_transition f1 ~time:0.1);
  Alcotest.(check (float 0.0)) "edge: clear" (0.2 +. 0.2)
    (Fault.next_transition f1 ~time:0.25);
  check_bool "edge: gone for good" true
    (Fault.next_transition f1 ~time:0.5 = infinity);
  Alcotest.(check (float 0.0)) "periodic: revalidate every instant" 0.3
    (Fault.next_transition f2 ~time:0.3)

let test_unarmed_identity () =
  (* an empty scenario arms nothing at all *)
  check_bool "empty scenario installs no hook" true
    (Fault_inject.sim_hook
       (Fault_inject.arm (scn []))
       ~sensor_ports:[||] ()
    = None);
  (* a hook whose windows never open must not perturb the trace *)
  let final_speed armed =
    let scenario =
      scn [ Fault.make ~at:10.0 ~duration:0.1 Fault.Sensor_dropout ]
    in
    let subject, _ = Servo_system.faultsim_subject ~scenario () in
    if armed then ignore (Fault_campaign.arm subject scenario)
    else Fault_campaign.disarm subject;
    for _ = 1 to 300 do
      Sim.step subject.Fault_campaign.sim
    done;
    Value.to_float
      (Sim.value subject.Fault_campaign.sim
         subject.Fault_campaign.ports.Fault_campaign.speed_port)
  in
  let w_off = final_speed false and w_on = final_speed true in
  check_bool "armed-but-idle hook is bit-identical" true (w_off = w_on)

(* ---- recovery campaigns on the servo loop ---- *)

let campaign ?(seeds = 2) name =
  let scenario =
    match Fault_scenario.find name with
    | Ok s -> s
    | Error e -> Alcotest.failf "scenario %s: %s" name e
  in
  let subject, _ = Servo_system.faultsim_subject ~scenario () in
  Fault_campaign.run ~seeds ~scenario subject

let test_campaign_dropout () =
  let r = campaign "encoder-dropout" in
  check_int "two runs" 2 (List.length r.Fault_campaign.runs);
  check_bool "all detected" true (Fault_campaign.all_detected r);
  check_bool "all recovered" true (Fault_campaign.all_recovered r);
  List.iter
    (fun run ->
      check_bool "left Nominal" true (run.Fault_campaign.max_mode >= 1);
      check_bool "spent steps degraded" true (run.Fault_campaign.steps_degraded > 0);
      (match run.Fault_campaign.detection_s with
      | Some d ->
          (* the wrapped count delta reads as a huge speed: range check
             fires within a few control periods *)
          check_bool "fast detection" true (d < 0.01)
      | None -> Alcotest.fail "no detection latency");
      (match run.Fault_campaign.recovery_s with
      | Some rt -> check_bool "recovers within 0.5 s" true (rt < 0.5)
      | None -> Alcotest.fail "no recovery time");
      check_bool "tracks the set-point again" true
        (run.Fault_campaign.residual_rms < 20.0))
    r.Fault_campaign.runs

(* the sharded campaign must reproduce the sequential one run-for-run:
   seeds are independent, results land in seed order, and each worker
   domain builds its own subject *)
let test_parallel_campaign_matches_sequential () =
  let scenario =
    match Fault_scenario.find "encoder-dropout" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let subject, _ = Servo_system.faultsim_subject ~scenario () in
  let seq = Fault_campaign.run ~t_end:0.4 ~seeds:6 ~scenario subject in
  let par =
    Exec_pool.with_pool ~workers:3 (fun pool ->
        Fault_campaign.run_parallel ~t_end:0.4 ~seeds:6 ~pool ~scenario
          (fun () -> fst (Servo_system.faultsim_subject ~scenario ())))
  in
  check_int "same number of runs" 6 (List.length par.Fault_campaign.runs);
  check_bool "identical run lists" true
    (seq.Fault_campaign.runs = par.Fault_campaign.runs);
  check_int "same steps per run" seq.Fault_campaign.steps_per_run
    par.Fault_campaign.steps_per_run

let test_campaign_stuck_reaches_safestop () =
  let r = campaign "sensor-stuck" in
  check_bool "all detected" true (Fault_campaign.all_detected r);
  check_bool "all recovered" true (Fault_campaign.all_recovered r);
  List.iter
    (fun run ->
      check_int "escalates to SafeStop" 2 run.Fault_campaign.max_mode;
      check_bool "spent steps safe-stopped" true
        (run.Fault_campaign.steps_safestop > 0))
    r.Fault_campaign.runs

let test_campaign_timing_faults_bite () =
  (* injected overruns stretch the step past the watchdog budget *)
  let r = campaign ~seeds:1 "overrun-burst" in
  check_bool "overruns detected" true (Fault_campaign.all_detected r);
  List.iter
    (fun run -> check_bool "watchdog bit" true (run.Fault_campaign.wdog_bites > 0))
    r.Fault_campaign.runs;
  let r = campaign ~seeds:1 "wdog-suppress" in
  check_bool "lost service detected" true (Fault_campaign.all_detected r);
  List.iter
    (fun run -> check_bool "watchdog bit" true (run.Fault_campaign.wdog_bites > 0))
    r.Fault_campaign.runs

let test_campaign_json () =
  let r = campaign ~seeds:2 "noise-burst" in
  let doc = Fault_campaign.to_json ~model:"servo" r in
  let text = Bench_json.to_string doc in
  let j = Bench_json.parse text in
  let str k = match Bench_json.member k j with
    | Some (Bench_json.Str s) -> s
    | _ -> Alcotest.failf "missing %s" k
  in
  check_string "schema" "ecsd-fault-1" (str "schema");
  check_string "model" "servo" (str "model");
  check_string "scenario" "noise-burst" (str "scenario");
  (match Bench_json.member "runs" j with
  | Some (Bench_json.Arr rows) -> check_int "rows" 2 (List.length rows)
  | _ -> Alcotest.fail "runs missing");
  (match Bench_json.member "all_recovered" j with
  | Some (Bench_json.Bool _) -> ()
  | _ -> Alcotest.fail "all_recovered missing")

(* ---- MIL vs SIL stays bit-exact through a fault transient ---- *)

let test_diff_under_fault () =
  let b =
    Servo_system.build
      ~config:{ Servo_system.default_config with Servo_system.with_supervisor = true }
      ()
  in
  let comp = Compile.compile b.Servo_system.controller in
  let plant = Servo_system.pil_plant b in
  let driver = Servo_system.pil_driver b in
  let scenario =
    match Fault_scenario.find "noise-burst" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let inj = Fault_inject.arm ~seed:7 scenario in
  let injector =
    {
      Silvm_diff.inj_sensors =
        (fun ~step:_ ~time codes ->
          Array.mapi
            (fun slot v -> Fault_inject.sensor inj ~slot ~time v land 0xFFFF)
            codes);
      inj_active = (fun ~time -> Fault_inject.active_names inj ~time);
    }
  in
  let r =
    Silvm_diff.run ~steps:1200 ~plant:(Silvm_diff.Plant (plant, driver))
      ~injector ~name:"servo" ~project:b.Servo_system.project comp
  in
  (match r.Silvm_diff.divergence with
  | None -> ()
  | Some d ->
      Alcotest.failf "diverged under fault at step %d %s:%d (MIL %s, SIL %s; %s)"
        d.Silvm_diff.d_step d.Silvm_diff.d_block d.Silvm_diff.d_port
        d.Silvm_diff.d_mil d.Silvm_diff.d_sil
        (String.concat ", " d.Silvm_diff.d_faults));
  check_int "ran every step" 1200 r.Silvm_diff.steps_run

(* ---- deployment-side watchdog behaviour ---- *)

let test_wdog_rearm () =
  let machine = Machine.create Mcu_db.mc56f8367 in
  let wd = Wdog_periph.create machine ~timeout:1e-3 () in
  Wdog_periph.enable wd;
  let half = Machine.cycles_of_time machine 0.5e-3 in
  Machine.advance machine ~cycles:(4 * half);
  let n1 = Wdog_periph.bites wd in
  check_bool "starved watchdog bites" true (n1 >= 1);
  (* serviced twice per timeout: the re-armed countdown never expires *)
  for _ = 1 to 8 do
    Wdog_periph.refresh wd;
    Machine.advance machine ~cycles:half
  done;
  check_int "no bites while serviced" n1 (Wdog_periph.bites wd);
  Machine.advance machine ~cycles:(4 * half);
  check_bool "bites again after re-arm" true (Wdog_periph.bites wd > n1)

let test_hil_wdog_under_injected_overruns () =
  let cfg = Servo_system.default_config in
  let b = Servo_system.build ~config:cfg () in
  let comp = Compile.compile b.Servo_system.controller in
  let arts = Target.generate ~name:"servo" ~project:b.Servo_system.project comp in
  let run ?overrun_inject () =
    let controller = Sim.create (Compile.compile b.Servo_system.controller) in
    Hil_cosim.servo_run ~watchdog:3e-3 ?overrun_inject
      ~built_mcu:cfg.Servo_system.mcu ~schedule:arts.Target.schedule ~controller
      ~motor:cfg.Servo_system.motor ~load:cfg.Servo_system.load
      ~encoder:(Encoder.create ~lines_per_rev:cfg.Servo_system.encoder_lines ())
      ~periods:300 ()
  in
  let clean = run () in
  check_int "no bites uninjected" 0
    clean.Hil_cosim.profile.Hil_cosim.watchdog_bites;
  (* a 100-period burst of +4 ms per step starves a 3 ms watchdog *)
  let cycles_4ms = 4 * 60_000 in
  let faulted =
    run ~overrun_inject:(fun k -> if k >= 100 && k < 200 then cycles_4ms else 0) ()
  in
  let p = faulted.Hil_cosim.profile in
  check_bool "injected overruns recorded" true (p.Hil_cosim.overruns > 0);
  check_bool "watchdog bites under overrun burst" true
    (p.Hil_cosim.watchdog_bites > 0)

(* ---- CON004 ---- *)

let test_con004 () =
  (* a watchdog bean nobody services *)
  let p = Bean_project.create Mcu_db.mc56f8367 in
  let _wd = Bean_project.add p (Bean.make ~name:"WD1" (Bean.Watch_dog { timeout = 8e-3 })) in
  let m = Model.create "wd_orphan" in
  let c = Model.add m ~name:"c" (Sources.constant 1.0) in
  let g = Model.add m ~name:"g" (Math_blocks.gain 2.0) in
  Model.connect m ~src:(c, 0) ~dst:(g, 0);
  let comp = Compile.compile m in
  (match Concurrency.watchdog_findings ~project:p comp with
  | [ f ] ->
      check_string "rule" "CON004" f.Diag.rule;
      check_string "subject" "WD1" f.Diag.subject;
      check_bool "severity error" true (f.Diag.severity = Diag.Error)
  | fs -> Alcotest.failf "expected one CON004, got %d" (List.length fs));
  (* the supervisor services WD1 from the periodic step: clean *)
  let b =
    Servo_system.build
      ~config:{ Servo_system.default_config with Servo_system.with_supervisor = true }
      ()
  in
  let comp = Compile.compile b.Servo_system.controller in
  check_int "supervised servo passes" 0
    (List.length
       (Concurrency.watchdog_findings ~project:b.Servo_system.project comp))

let suite =
  [
    Alcotest.test_case "fault windows" `Quick test_fault_window;
    Alcotest.test_case "scenario parse" `Quick test_scenario_parse;
    Alcotest.test_case "scenario errors" `Quick test_scenario_errors;
    Alcotest.test_case "builtin scenarios" `Quick test_builtins;
    Alcotest.test_case "injector: sensor kinds" `Quick test_injector_sensor;
    Alcotest.test_case "injector: seeds and actuators" `Quick
      test_injector_determinism;
    Alcotest.test_case "injector: cache matches Fault.active" `Quick
      test_injector_cache_equivalence;
    Alcotest.test_case "unarmed hooks are identity" `Quick test_unarmed_identity;
    Alcotest.test_case "campaign: encoder dropout recovers" `Quick
      test_campaign_dropout;
    Alcotest.test_case "campaign: parallel matches sequential" `Quick
      test_parallel_campaign_matches_sequential;
    Alcotest.test_case "campaign: stuck sensor reaches SafeStop" `Quick
      test_campaign_stuck_reaches_safestop;
    Alcotest.test_case "campaign: timing faults bite the watchdog" `Quick
      test_campaign_timing_faults_bite;
    Alcotest.test_case "campaign: JSON roundtrip" `Quick test_campaign_json;
    Alcotest.test_case "MIL vs SIL bit-exact under fault" `Quick
      test_diff_under_fault;
    Alcotest.test_case "watchdog re-arms after bite" `Quick test_wdog_rearm;
    Alcotest.test_case "HIL watchdog bites under injected overruns" `Quick
      test_hil_wdog_under_injected_overruns;
    Alcotest.test_case "CON004 watchdog service path" `Quick test_con004;
  ]
