(* The flight recorder: ring overflow semantics, track filtering,
   capture-once, multi-domain stress (no tearing), bundle byte-identity
   whatever the worker count, the forced-divergence drill, and the
   Telemetry exports built on the Obs registry. Recorder state is
   process-global, so every test starts from [Flight.reset] and restores
   the defaults. *)

let with_flight ?(capacity = 4096) f =
  Flight.reset ();
  Flight.set_capacity capacity;
  Flight.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Flight.set_enabled false;
      Flight.set_capacity 4096;
      Flight.reset ())
    f

(* oldest evicted first: 20 events through an 8-slot ring leave exactly
   the last 8, and the bundle counts the 12 casualties *)
let test_ring_overflow () =
  with_flight ~capacity:8 @@ fun () ->
  Flight.begin_track ~id:7 ~name:"servo";
  for i = 0 to 19 do
    Flight.step_mark ~step:i ~time:(float_of_int i *. 1e-3) "servo"
  done;
  Flight.capture ~reason:"overflow test";
  match Flight.captures () with
  | [ b ] ->
      Alcotest.(check int) "track" 7 b.Flight.b_track;
      Alcotest.(check string) "name" "servo" b.Flight.b_name;
      Alcotest.(check int) "survivors" 8 (List.length b.Flight.b_events);
      Alcotest.(check int) "dropped" 12 b.Flight.b_dropped;
      Alcotest.(check (list int))
        "last 8 seqs, ascending"
        [ 12; 13; 14; 15; 16; 17; 18; 19 ]
        (List.map (fun e -> e.Flight.ev_seq) b.Flight.b_events);
      List.iter
        (fun e ->
          Alcotest.(check int) "step = seq for step marks" e.Flight.ev_seq
            e.Flight.ev_step)
        b.Flight.b_events
  | bs -> Alcotest.failf "expected one bundle, got %d" (List.length bs)

(* a capture snapshots only the current track: the other track's events
   and the engine pseudo-track never leak into the bundle, and the first
   capture of a track wins *)
let test_track_filtering_and_capture_once () =
  with_flight @@ fun () ->
  Flight.begin_track ~id:1 ~name:"one";
  for i = 0 to 9 do
    Flight.step_mark ~step:i ~time:0.0 "one"
  done;
  Flight.engine "cache.hit deadbeef";
  Flight.begin_track ~id:2 ~name:"two";
  for i = 0 to 4 do
    Flight.signal ~step:i ~time:0.0 ~port:0 ~value:(float_of_int i) "sig"
  done;
  Flight.fault ~time:0.1 ~fired:true "encoder-dropout";
  Flight.capture ~reason:"first";
  Flight.capture ~reason:"second";
  match Flight.captures () with
  | [ b ] ->
      Alcotest.(check int) "track" 2 b.Flight.b_track;
      Alcotest.(check string) "first capture wins" "first" b.Flight.b_reason;
      Alcotest.(check int) "only track-2 events" 6
        (List.length b.Flight.b_events);
      List.iter
        (fun e -> Alcotest.(check int) "track field" 2 e.Flight.ev_track)
        b.Flight.b_events;
      (match List.rev b.Flight.b_events with
      | last :: _ ->
          Alcotest.(check string) "fault label" "encoder-dropout"
            last.Flight.ev_label;
          Alcotest.(check int) "fired flag" 1 last.Flight.ev_arg
      | [] -> Alcotest.fail "empty bundle")
  | bs -> Alcotest.failf "expected one bundle, got %d" (List.length bs)

(* a synthetic campaign: [tracks] runs of [events] deterministic events
   each, sharded (or not) over a pool; every run captures at its end *)
let run_campaign ~workers ~tracks ~events ~capacity =
  Flight.reset ();
  Flight.set_capacity capacity;
  Flight.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Flight.set_enabled false;
      Flight.set_capacity 4096)
  @@ fun () ->
  let work i =
    let id = i + 1 in
    Flight.begin_track ~id ~name:"stress";
    for k = 0 to events - 1 do
      Flight.signal ~step:k
        ~time:(float_of_int k *. 1e-3)
        ~port:(k land 3)
        ~value:(float_of_int ((id * 100_000) + k))
        "sig"
    done;
    Flight.capture ~reason:(Printf.sprintf "end of run %d" id);
    id
  in
  (if workers <= 1 then
     for i = 0 to tracks - 1 do
       ignore (work i)
     done
   else
     Exec_pool.with_pool ~workers (fun pool ->
         ignore (Exec_pool.run_map pool tracks work)));
  let bundles = Flight.captures () in
  let jsonl = Flight.captures_jsonl () in
  Flight.reset ();
  (bundles, jsonl)

(* 16 runs x 2000 events racing over 4 domains into 1024-slot rings:
   every bundle must still hold exactly the last 1024 events of its own
   run with all fields consistent — any torn or cross-track slot fails *)
let test_multidomain_stress_no_tearing () =
  let tracks = 16 and events = 2000 and capacity = 1024 in
  let bundles, _ =
    run_campaign ~workers:4 ~tracks ~events ~capacity
  in
  Alcotest.(check int) "all runs captured" tracks (List.length bundles);
  List.iteri
    (fun i b ->
      let id = i + 1 in
      Alcotest.(check int) "bundles sorted by track" id b.Flight.b_track;
      Alcotest.(check int) "exactly capacity survivors" capacity
        (List.length b.Flight.b_events);
      Alcotest.(check int) "dropped = events - capacity" (events - capacity)
        b.Flight.b_dropped;
      List.iteri
        (fun j e ->
          let k = events - capacity + j in
          if
            e.Flight.ev_seq <> k
            || e.Flight.ev_track <> id
            || e.Flight.ev_step <> k
            || e.Flight.ev_arg <> k land 3
            || e.Flight.ev_value <> float_of_int ((id * 100_000) + k)
            || e.Flight.ev_label <> "sig"
          then
            Alcotest.failf "torn event: track %d slot %d (seq %d)" id j
              e.Flight.ev_seq)
        b.Flight.b_events)
    bundles

(* the correctness bar of the recorder: the merged JSONL document is
   byte-identical whether the campaign ran serially or on 4 domains *)
let test_bundle_byte_identity_across_jobs () =
  let tracks = 8 and events = 300 and capacity = 256 in
  let _, s1 = run_campaign ~workers:1 ~tracks ~events ~capacity in
  let _, s4 = run_campaign ~workers:4 ~tracks ~events ~capacity in
  Alcotest.(check bool) "jsonl non-trivial" true (String.length s1 > 1000);
  Alcotest.(check bool) "jobs 1 vs jobs 4 byte-identical" true (s1 = s4);
  (* and stable across repetition on the same worker count *)
  let _, s4' = run_campaign ~workers:4 ~tracks ~events ~capacity in
  Alcotest.(check bool) "jobs 4 repeat byte-identical" true (s4 = s4')

(* the CI drill hook: ECSD_DIVERGE_AT fabricates a divergence at step k
   and the recorder auto-captures a bundle for the failing run *)
let test_forced_divergence_capture () =
  with_flight @@ fun () ->
  Unix.putenv "ECSD_DIVERGE_AT" "25";
  Fun.protect ~finally:(fun () -> Unix.putenv "ECSD_DIVERGE_AT" "")
  @@ fun () ->
  let built = Servo_system.build () in
  let comp = Compile.compile built.Servo_system.controller in
  let plant = Servo_system.pil_plant built in
  let driver = Servo_system.pil_driver built in
  Flight.begin_track ~id:1 ~name:"servo";
  let r =
    Silvm_diff.run ~steps:100 ~float_mode:Silvm_diff.Exact
      ~engine:Silvm_diff.Compiled
      ~plant:(Silvm_diff.Plant (plant, driver))
      ~name:"servo" ~project:built.Servo_system.project comp
  in
  (match r.Silvm_diff.divergence with
  | Some d ->
      Alcotest.(check int) "diverged at forced step" 25 d.Silvm_diff.d_step;
      Alcotest.(check string) "forced marker block" "__forced"
        d.Silvm_diff.d_block
  | None -> Alcotest.fail "ECSD_DIVERGE_AT did not force a divergence");
  match Flight.captures () with
  | [ b ] ->
      Alcotest.(check int) "bundle on track 1" 1 b.Flight.b_track;
      Alcotest.(check bool) "bundle has events" true (b.Flight.b_events <> []);
      Alcotest.(check bool) "reason names the divergence" true
        (Astring_contains.contains b.Flight.b_reason "divergence at step 25");
      let last = List.hd (List.rev b.Flight.b_events) in
      Alcotest.(check bool) "last event is the divergence mark" true
        (Astring_contains.contains last.Flight.ev_label "divergence")
  | bs -> Alcotest.failf "expected one bundle, got %d" (List.length bs)

(* a disabled recorder records nothing and captures nothing *)
let test_disabled_is_inert () =
  Flight.reset ();
  Flight.set_enabled false;
  Flight.begin_track ~id:9 ~name:"off";
  Flight.step_mark ~step:0 ~time:0.0 "off";
  Flight.capture ~reason:"should not exist";
  Alcotest.(check int) "no captures" 0 (List.length (Flight.captures ()));
  Alcotest.(check string) "empty jsonl" "" (Flight.captures_jsonl ())

(* Telemetry: the Prometheus exposition and the serve heartbeat line are
   both projections of the Obs registry snapshot *)
let test_telemetry_exports () =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
  @@ fun () ->
  Obs.incr_counter ~by:3 "silvm.steps";
  Obs.set_gauge "exec.injector_depth" 2.0;
  Obs.record_named "serve.job_s" 0.5;
  Obs.record_named "serve.job_s" 1.0;
  let p = Telemetry.prometheus () in
  let has s = Astring_contains.contains p s in
  Alcotest.(check bool) "counter type line" true
    (has "# TYPE ecsd_silvm_steps counter");
  Alcotest.(check bool) "counter value" true (has "ecsd_silvm_steps 3");
  Alcotest.(check bool) "gauge value" true (has "ecsd_exec_injector_depth 2");
  Alcotest.(check bool) "summary type line" true
    (has "# TYPE ecsd_serve_job_s summary");
  Alcotest.(check bool) "p95 quantile line" true (has "quantile=\"0.95\"");
  Alcotest.(check bool) "summary count" true (has "ecsd_serve_job_s_count 2");
  let line = Telemetry.heartbeat_line ~jobs_done:4 ~inflight:1 ~wall_s:2.0 in
  let doc = Bench_json.parse line in
  let num k =
    match Bench_json.member k doc with
    | Some (Bench_json.Float f) -> f
    | Some (Bench_json.Int i) -> float_of_int i
    | _ -> Alcotest.failf "heartbeat field %s missing" k
  in
  (match Bench_json.member "heartbeat" doc with
  | Some (Bench_json.Bool true) -> ()
  | _ -> Alcotest.fail "heartbeat marker field");
  Alcotest.(check (float 1e-9)) "jobs_done" 4.0 (num "jobs_done");
  Alcotest.(check (float 1e-9)) "inflight" 1.0 (num "inflight");
  Alcotest.(check (float 1e-9)) "jobs_per_s" 2.0 (num "jobs_per_s");
  (* log-scale histogram: <= ~6 % relative quantile error *)
  let p50 = num "job_p50_s" in
  if Float.abs (p50 -. 0.5) /. 0.5 > 0.07 then
    Alcotest.failf "job_p50_s expected ~0.5, got %g" p50;
  Alcotest.(check (float 1e-9)) "job_max_s exact" 1.0 (num "job_max_s")

let suite =
  [
    Alcotest.test_case "ring overflow evicts oldest" `Quick test_ring_overflow;
    Alcotest.test_case "track filtering and capture-once" `Quick
      test_track_filtering_and_capture_once;
    Alcotest.test_case "4-domain stress, no tearing" `Quick
      test_multidomain_stress_no_tearing;
    Alcotest.test_case "bundle byte-identity across --jobs" `Quick
      test_bundle_byte_identity_across_jobs;
    Alcotest.test_case "forced divergence auto-captures" `Quick
      test_forced_divergence_capture;
    Alcotest.test_case "disabled recorder is inert" `Quick
      test_disabled_is_inert;
    Alcotest.test_case "prometheus + heartbeat exports" `Quick
      test_telemetry_exports;
  ]
