(* The typed mid-level IR: exact C round-tripping, the verifier, the
   dataflow rules (MIR001-004), the optimization passes, and a QCheck
   differential property pitting the MIR reference evaluator against
   the SIL interpreter running the lowered C. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let mcu = Mcu_db.mc56f8367

(* ---------------- round-trip identity ---------------- *)

(* lift -> lower is the identity on generated units: re-processing an
   already-processed unit (codegen runs every model_c through
   Mir_unit.process) must reproduce it byte-for-byte *)
let assert_roundtrip what (arts : Target.artifacts) =
  let u = arts.Target.model_c in
  let again =
    Mir_unit.process ~header:arts.Target.model_h.C_ast.items u
  in
  check_string (what ^ ": lift/lower is the identity")
    (C_print.print_unit u) (C_print.print_unit again)

let servo_arts ?(fixed = false) ?(mode = Blockgen.Hw) () =
  let config =
    {
      Servo_system.default_config with
      Servo_system.variant =
        (if fixed then Servo_system.Fixed_pid else Servo_system.Float_pid);
    }
  in
  let b = Servo_system.build ~config () in
  let comp = Compile.compile b.Servo_system.controller in
  Target.generate ~mode ~name:"servo" ~project:b.Servo_system.project comp

let test_roundtrip_generated () =
  assert_roundtrip "servo float hw" (servo_arts ());
  assert_roundtrip "servo fixed hw" (servo_arts ~fixed:true ());
  assert_roundtrip "servo float pil" (servo_arts ~mode:Blockgen.Pil ());
  let m, project = Check.hazard_demo ~mcu () in
  let comp = Compile.compile m in
  assert_roundtrip "isr-demo"
    (Target.generate ~name:"isr_demo" ~project comp)

(* ---------------- the verifier ---------------- *)

let lift_unit items =
  Mir_unit.lift ~header:[] { C_ast.unit_name = "t.c"; items }

let one_func ?(args = []) ?(ret = C_ast.I32) body =
  C_ast.Func_def (C_ast.func ret "probe" args body)

let test_verifier_accepts_generated () =
  let arts = servo_arts ~fixed:true () in
  let { Mir_unit.env; funcs } =
    Mir_unit.lift ~header:arts.Target.model_h.C_ast.items arts.Target.model_c
  in
  List.iter
    (fun (f, body) ->
      match Mir_typecheck.check_func env f body with
      | [] -> ()
      | errs ->
          Alcotest.failf "verifier rejects generated %s: %s" f.C_ast.fname
            (String.concat "; " (List.map Mir_typecheck.pp_error errs)))
    funcs

let test_verifier_rejects_bad_programs () =
  (* % on a float operand violates the C integer-operator constraint *)
  let { Mir_unit.env; funcs } =
    lift_unit
      [
        one_func ~args:[ (C_ast.Double_t, "x") ]
          [ C_ast.Return (Some (C_ast.Bin ("%", C_ast.Var "x", C_ast.Int_lit 3))) ];
      ]
  in
  let f, body = List.hd funcs in
  check_bool "float %% rejected" true (Mir_typecheck.check_func env f body <> []);
  (* pe_sat16 of a double argument *)
  let f2 = C_ast.func C_ast.I16 "probe2" [ (C_ast.Double_t, "x") ]
      [ C_ast.Return (Some (C_ast.Call ("pe_sat16", [ C_ast.Var "x" ]))) ]
  in
  let { Mir_unit.env = env2; funcs = funcs2 } =
    lift_unit [ C_ast.Func_def f2 ]
  in
  let g, gbody = List.hd funcs2 in
  check_bool "float pe_sat16 rejected" true
    (Mir_typecheck.check_func env2 g gbody <> [])

(* ---------------- MIR001-003: def-use rules ---------------- *)

let dfa_of items =
  let { Mir_unit.funcs; _ } = lift_unit items in
  let f, body = List.hd funcs in
  Mir_dfa.analyze body ~args:(List.map snd f.C_ast.args)

let has_uninit var facts =
  List.exists
    (function Mir_dfa.Uninit_read { var = v; _ } -> v = var | _ -> false)
    facts

let has_dead_store var facts =
  List.exists
    (function Mir_dfa.Dead_store { var = v; _ } -> v = var | _ -> false)
    facts

let has_unreachable facts =
  List.exists (function Mir_dfa.Unreachable _ -> true | _ -> false) facts

let test_uninit_read () =
  let open C_ast in
  let facts =
    dfa_of
      [
        one_func
          [
            Decl (I32, "x", None);
            Return (Some (Bin ("+", Var "x", Int_lit 1)));
          ];
      ]
  in
  check_bool "read of unassigned local" true (has_uninit "x" facts);
  (* assigned on only one branch: still a may-uninit read *)
  let facts2 =
    dfa_of
      [
        one_func ~args:[ (I32, "c") ]
          [
            Decl (I32, "y", None);
            If (Var "c", [ Assign (Var "y", Int_lit 1) ], []);
            Return (Some (Var "y"));
          ];
      ]
  in
  check_bool "one-branch assignment" true (has_uninit "y" facts2);
  (* assigned on both branches: clean *)
  let facts3 =
    dfa_of
      [
        one_func ~args:[ (I32, "c") ]
          [
            Decl (I32, "z", None);
            If (Var "c", [ Assign (Var "z", Int_lit 1) ],
               [ Assign (Var "z", Int_lit 2) ]);
            Return (Some (Var "z"));
          ];
      ]
  in
  check_bool "both-branch assignment is clean" false (has_uninit "z" facts3)

let test_uninit_out_param_regression () =
  (* &x passed to a bean getter is an out-parameter (the callee writes
     it): the isr-demo's AD1_GetValue(&code) must not trip MIR001 *)
  let open C_ast in
  let facts =
    dfa_of
      [
        one_func
          [
            Decl (U16, "code", None);
            Expr (Call ("AD1_GetValue", [ Un ("&", Var "code") ]));
            Return (Some (Var "code"));
          ];
      ]
  in
  check_bool "out-param is a def, not a read" false (has_uninit "code" facts)

let test_dead_store () =
  let open C_ast in
  let facts =
    dfa_of
      [
        one_func
          [
            Decl (I32, "x", None);
            Assign (Var "x", Int_lit 5);
            Assign (Var "x", Int_lit 6);
            Return (Some (Var "x"));
          ];
      ]
  in
  check_bool "overwritten store is dead" true (has_dead_store "x" facts);
  (* a store whose rhs calls out is never reported *)
  let facts2 =
    dfa_of
      [
        one_func
          [
            Decl (I32, "x", None);
            Assign (Var "x", Call ("side_effect", []));
            Assign (Var "x", Int_lit 6);
            Return (Some (Var "x"));
          ];
      ]
  in
  check_bool "effectful rhs exempt" false (has_dead_store "x" facts2)

let test_unreachable () =
  let open C_ast in
  let facts =
    dfa_of
      [
        one_func
          [ Return (Some (Int_lit 0)); Expr (Call ("after_return", [])) ];
      ]
  in
  check_bool "statement after return" true (has_unreachable facts);
  let facts2 =
    dfa_of [ one_func [ Return (Some (Int_lit 0)) ] ] in
  check_bool "plain return is clean" false (has_unreachable facts2)

(* ---------------- MIR004: the saturation prover ---------------- *)

let sat_verdicts items =
  let { Mir_unit.env; funcs } = lift_unit items in
  let f, body = List.hd funcs in
  Mir_range.analyze env f body
  |> List.map (fun s -> (s.Mir_range.op, s.Mir_range.verdict))

let test_sat_prover () =
  let open C_ast in
  (* constant in range: provably never saturates *)
  let v1 =
    sat_verdicts
      [
        one_func
          [
            Decl (I32, "a", Some (Int_lit 1200));
            Return (Some (Call ("pe_sat16", [ Var "a" ])));
          ];
      ]
  in
  (match v1 with
  | [ ("pe_sat16", Mir_range.Never) ] -> ()
  | _ -> Alcotest.fail "expected a single Never verdict");
  (* constant outside int16: provably always saturates *)
  let v2 =
    sat_verdicts
      [
        one_func
          [
            Decl (I32, "a", Some (Int_lit 70000));
            Return (Some (Call ("pe_sat16", [ Var "a" ])));
          ];
      ]
  in
  (match v2 with
  | [ ("pe_sat16", Mir_range.Always) ] -> ()
  | _ -> Alcotest.fail "expected a single Always verdict");
  (* unknown external value: may saturate *)
  let v3 =
    sat_verdicts
      [
        one_func
          [
            Decl (I32, "a", Some (Call ("unknown_sensor", [])));
            Return (Some (Call ("pe_sat16", [ Var "a" ])));
          ];
      ]
  in
  match v3 with
  | [ ("pe_sat16", Mir_range.May) ] -> ()
  | _ -> Alcotest.fail "expected a single May verdict"

(* the MIR rules surface through Check.run with their catalogue IDs *)
let test_mir_rules_in_check () =
  let m, p = Check.hazard_demo ~mcu () in
  let report = Check.run ~project:p m in
  let rules = List.map (fun f -> f.Diag.rule) report.Check.findings in
  check_bool "no MIR001 on generated isr-demo" false
    (List.mem "MIR001" rules);
  (* servo's quantised peripheral casts carry range-prover verdicts *)
  let b = Servo_system.build () in
  let r2 =
    Check.run ~project:b.Servo_system.project b.Servo_system.controller
  in
  check_bool "MIR004 verdicts on servo" true
    (List.exists (fun f -> f.Diag.rule = "MIR004") r2.Check.findings)

(* ---------------- optimization passes ---------------- *)

let optimize_unit items =
  Mir_unit.process ~opt:true ~header:[]
    { C_ast.unit_name = "t.c"; items }

let printed items = C_print.print_unit (optimize_unit items)

let test_const_fold () =
  let open C_ast in
  let src =
    printed
      [
        one_func
          [
            Decl (I32, "x", Some (Bin ("+", Int_lit 2, Int_lit 3)));
            Return (Some (Var "x"));
          ];
      ]
  in
  check_bool "2 + 3 folds to 5" true (Astring_contains.contains src "return 5;");
  (* division by zero is never folded *)
  let src2 =
    printed
      [
        one_func
          [ Return (Some (Bin ("/", Int_lit 1, Int_lit 0))) ];
      ]
  in
  check_bool "1 / 0 survives" true (Astring_contains.contains src2 "1 / 0")

let test_copy_prop_and_dce () =
  let open C_ast in
  let src =
    printed
      [
        one_func
          [
            Decl (I32, "x", Some (Int_lit 5));
            Decl (I32, "y", Some (Bin ("+", Var "x", Int_lit 1)));
            Return (Some (Var "y"));
          ];
      ]
  in
  check_bool "chain folds to a constant return" true
    (Astring_contains.contains src "return 6;");
  check_bool "dead locals eliminated" false
    (Astring_contains.contains src "x =")

let test_sat_fusion () =
  let open C_ast in
  (* pe_sat16 of an int16-typed value cannot clamp: fuse to a cast *)
  let src =
    printed
      [
        one_func ~ret:I16
          ~args:[ (I16, "a") ]
          [ Return (Some (Call ("pe_sat16", [ Var "a" ]))) ];
      ]
  in
  check_bool "pe_sat16 of an int16 fuses away" false
    (Astring_contains.contains src "pe_sat16");
  (* of an int32 it must survive *)
  let src2 =
    printed
      [
        one_func ~ret:I16
          ~args:[ (I32, "a") ]
          [ Return (Some (Call ("pe_sat16", [ Var "a" ]))) ];
      ]
  in
  check_bool "pe_sat16 of an int32 survives" true
    (Astring_contains.contains src2 "pe_sat16")

let test_branch_elimination () =
  let open C_ast in
  let src =
    printed
      [
        one_func
          [
            If (Int_lit 0, [ Expr (Call ("dead_call", [])) ], []);
            While (Int_lit 0, [ Expr (Call ("dead_loop", [])) ]);
            Return (Some (Int_lit 1));
          ];
      ]
  in
  check_bool "if(0) body dropped" false
    (Astring_contains.contains src "dead_call");
  check_bool "while(0) body dropped" false
    (Astring_contains.contains src "dead_loop")

(* optimized codegen must keep every static-analysis verdict at least
   as good: the fixed servo stays MISRA-clean under --opt *)
let test_opt_misra_clean () =
  let config =
    { Servo_system.default_config with
      Servo_system.variant = Servo_system.Fixed_pid }
  in
  let b = Servo_system.build ~config () in
  let comp = Compile.compile b.Servo_system.controller in
  let arts =
    Target.generate ~opt:true ~name:"servo"
      ~project:b.Servo_system.project comp
  in
  let findings =
    Misra.lint
      (arts.Target.model_h :: arts.Target.model_c :: arts.Target.main_c
     :: arts.Target.hal)
    |> List.filter (fun f -> f.Diag.severity <> Diag.Info)
  in
  check_int "no new MISRA findings under --opt" 0 (List.length findings)

(* ---------------- MIR <-> C differential property ----------------

   Random well-typed straight-line programs over scalar locals:
   the MIR reference evaluator and the SIL interpreter running the
   lowered C must agree on every final variable value, bit for bit.
   Programs that trip C UB (signed overflow, INT_MIN negation ...)
   make the reference evaluator raise Undefined and are skipped —
   the generated-code fuzzers in test_silvm cover the defined space
   the blocks actually emit. *)

type gvar = { gname : string; gcty : C_ast.cty; ginit : Mir_eval.value }

let ity_of_cty = function
  | C_ast.I8 -> Some { Mir.bits = 8; signed = true }
  | C_ast.U8 -> Some { Mir.bits = 8; signed = false }
  | C_ast.I16 -> Some { Mir.bits = 16; signed = true }
  | C_ast.U16 -> Some { Mir.bits = 16; signed = false }
  | C_ast.I32 -> Some { Mir.bits = 32; signed = true }
  | C_ast.U32 -> Some { Mir.bits = 32; signed = false }
  | _ -> None

let random_vars rng =
  let ctys =
    [| C_ast.I8; C_ast.U8; C_ast.I16; C_ast.U16; C_ast.I32; C_ast.U32;
       C_ast.Double_t |]
  in
  List.init 3 (fun i ->
      let gcty = ctys.(Random.State.int rng (Array.length ctys)) in
      let ginit =
        match ity_of_cty gcty with
        | Some ity ->
            let n =
              if ity.Mir.signed then Random.State.int rng 201 - 100
              else Random.State.int rng 101
            in
            Mir_eval.Vi (ity, Int64.of_int n)
        | None ->
            Mir_eval.Vf
              (Mir.Tf64, Random.State.float rng 2000.0 -. 1000.0)
      in
      { gname = Printf.sprintf "x%d" i; gcty; ginit })

let int_vars vars = List.filter (fun v -> ity_of_cty v.gcty <> None) vars
let float_vars vars = List.filter (fun v -> ity_of_cty v.gcty = None) vars

let qkinds =
  [| Mir.Qb; Mir.Qi8; Mir.Qu8; Mir.Qi16; Mir.Qu16; Mir.Qi32; Mir.Qu32 |]

(* want = `I (integer-typed) or `F (double-typed); total by
   construction: integer divisors and shift counts are non-zero
   constants, floats never cast (only quantised) into the int world *)
let rec gen_expr rng vars want depth =
  let leaf () =
    match want with
    | `I -> (
        let candidates = int_vars vars in
        match candidates with
        | c when c <> [] && Random.State.bool rng ->
            Mir.Load
              (Mir.Pvar (List.nth c (Random.State.int rng (List.length c))).gname)
        | _ -> Mir.Kint (Random.State.int rng 41 - 20, Mir.Dec))
    | `F -> (
        let candidates = float_vars vars in
        match candidates with
        | c when c <> [] && Random.State.bool rng ->
            Mir.Load
              (Mir.Pvar (List.nth c (Random.State.int rng (List.length c))).gname)
        | _ -> Mir.Kfloat (Random.State.float rng 40.0 -. 20.0))
  in
  if depth <= 0 then leaf ()
  else
    let sub w = gen_expr rng vars w (depth - 1) in
    match want with
    | `I -> (
        match Random.State.int rng 12 with
        | 0 -> Mir.Ebin (Mir.Add, sub `I, sub `I)
        | 1 -> Mir.Ebin (Mir.Sub, sub `I, sub `I)
        | 2 -> Mir.Ebin (Mir.Mul, sub `I, sub `I)
        | 3 ->
            let op = if Random.State.bool rng then Mir.Div else Mir.Mod in
            Mir.Ebin (op, sub `I, Mir.Kint (1 + Random.State.int rng 9, Mir.Dec))
        | 4 ->
            let op = if Random.State.bool rng then Mir.Shl else Mir.Shr in
            (* promote through uint16_t: the shiftee is non-negative and
               cannot overflow int, so the shift is always defined *)
            Mir.Ebin
              (op, Mir.Ecast (C_ast.U16, sub `I),
               Mir.Kint (Random.State.int rng 8, Mir.Dec))
        | 5 ->
            let op =
              [| Mir.Band; Mir.Bor; Mir.Bxor |].(Random.State.int rng 3)
            in
            Mir.Ebin (op, sub `I, sub `I)
        | 6 ->
            let op =
              [| Mir.Eq; Mir.Ne; Mir.Lt; Mir.Gt; Mir.Le; Mir.Ge |].(Random.State.int rng 6)
            in
            let w = if Random.State.bool rng then `I else `F in
            Mir.Ebin (op, sub w, sub w)
        | 7 ->
            let op = if Random.State.bool rng then Mir.Land else Mir.Lor in
            Mir.Ebin (op, sub `I, sub `I)
        | 8 -> Mir.Eun ((if Random.State.bool rng then Mir.Neg else Mir.Lnot), sub `I)
        | 9 ->
            if Random.State.bool rng then Mir.Esat16 (sub `I)
            else Mir.Esat_add32 (sub `I, sub `I)
        | 10 ->
            let w = if Random.State.bool rng then `I else `F in
            Mir.Equantize (qkinds.(Random.State.int rng 7), sub w)
        | _ -> Mir.Eselect (sub `I, sub `I, sub `I))
    | `F -> (
        match Random.State.int rng 6 with
        | 0 -> Mir.Ebin (Mir.Add, sub `F, sub `F)
        | 1 -> Mir.Ebin (Mir.Sub, sub `F, sub `F)
        | 2 -> Mir.Ebin (Mir.Mul, sub `F, sub `F)
        | 3 -> Mir.Ebin (Mir.Div, sub `F, sub `F)
        | 4 -> Mir.Ecast (C_ast.Double_t, sub `I)
        | _ -> Mir.Eselect (sub `I, sub `F, sub `F))

let gen_program rng =
  let vars = random_vars rng in
  let n = 3 + Random.State.int rng 5 in
  let body =
    List.init n (fun _ ->
        let v = List.nth vars (Random.State.int rng (List.length vars)) in
        let want = if ity_of_cty v.gcty = None then `F else `I in
        (* a quantised or comparison rhs may cross worlds; the
           assignment converts to the destination like C does *)
        let want =
          if want = `I || Random.State.int rng 4 > 0 then want else `I
        in
        Mir.Sassign (Mir.Pvar v.gname, gen_expr rng vars want 3))
  in
  (vars, body)

let lower_to_c_unit vars body =
  (* one probe function per variable: full program, then return it *)
  let decls =
    List.map
      (fun v ->
        let init =
          match v.ginit with
          | Mir_eval.Vi (_, n) -> C_ast.Int_lit (Int64.to_int n)
          | Mir_eval.Vf (_, x) -> C_ast.Float_lit x
        in
        C_ast.Decl (v.gcty, v.gname, Some init))
      vars
  in
  let lowered = List.map Mir_to_c.lower_stmt body in
  let probes =
    List.map
      (fun v ->
        C_ast.Func_def
          (C_ast.func v.gcty ("get_" ^ v.gname) []
             (decls @ lowered @ [ C_ast.Return (Some (C_ast.Var v.gname)) ])))
      vars
  in
  { C_ast.unit_name = "fuzz.c";
    items = Target.fix_helpers @ Blockgen.cast_helpers @ probes }

let mir_env = Mir_env.create []

let run_mir vars body =
  Mir_eval.run mir_env
    ~globals:(List.map (fun v -> (v.gname, v.ginit)) vars)
    body

let value_repr = function
  | Mir_eval.Vi (_, n) -> Int64.to_string n
  | Mir_eval.Vf (_, x) -> Printf.sprintf "%h" x

let silvm_repr cty (v : Silvm_value.t) =
  match cty with
  | C_ast.Double_t -> Printf.sprintf "%h" (Silvm_value.to_float v)
  | _ -> Int64.to_string (Silvm_value.to_int64 v)

let fuzz_count =
  match Sys.getenv_opt "SILVM_FUZZ_COUNT" with
  | Some s -> (try int_of_string s with _ -> 200)
  | None -> 200

let prop_mir_c_roundtrip =
  QCheck2.Test.make
    ~name:"random MIR programs: reference evaluator and SIL agree on lowered C"
    ~count:(2 * fuzz_count)
    QCheck2.Gen.(int_range 1 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 77 |] in
      let vars, body = gen_program rng in
      match run_mir vars body with
      | exception (Mir_eval.Undefined _ | Mir_eval.Unsupported _) ->
          true (* the program trips C UB: nothing to compare *)
      | finals ->
          let interp = Silvm_interp.create () in
          Silvm_interp.add_unit interp (lower_to_c_unit vars body);
          List.for_all
            (fun v ->
              let mir_v = value_repr (List.assoc v.gname finals) in
              let sil_v =
                match Silvm_interp.call interp ("get_" ^ v.gname) []
                with
                | Some sv -> silvm_repr v.gcty sv
                | None -> "<void>"
              in
              if String.equal mir_v sil_v then true
              else
                QCheck2.Test.fail_reportf
                  "seed=%d var=%s (%s): MIR=%s SIL=%s\nprogram:\n%s" seed
                  v.gname
                  (C_print.expr_to_string (C_ast.Var v.gname))
                  mir_v sil_v
                  (C_print.print_stmts (List.map Mir_to_c.lower_stmt body)))
            vars)

(* the optimizer must preserve those same semantics: optimize the MIR
   program and re-run the reference evaluator on the optimized body *)
let prop_opt_preserves_semantics =
  QCheck2.Test.make
    ~name:"random MIR programs: optimization passes preserve the evaluation"
    ~count:fuzz_count
    QCheck2.Gen.(int_range 1_000_001 2_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 77 |] in
      let vars, body = gen_program rng in
      match run_mir vars body with
      | exception (Mir_eval.Undefined _ | Mir_eval.Unsupported _) -> true
      | finals -> (
          let f =
            C_ast.func C_ast.Void "prog"
              (List.map (fun v -> (v.gcty, v.gname)) vars)
              []
          in
          match Mir_opt.optimize mir_env f body with
          | exception Mir_typecheck.Verify_failed msg ->
              QCheck2.Test.fail_reportf "seed=%d verifier: %s" seed msg
          | optimized -> (
              match run_mir vars optimized with
              | exception (Mir_eval.Undefined _ | Mir_eval.Unsupported _) ->
                  QCheck2.Test.fail_reportf
                    "seed=%d optimized program became undefined" seed
              | finals' ->
                  List.for_all
                    (fun v ->
                      let a = value_repr (List.assoc v.gname finals) in
                      let b = value_repr (List.assoc v.gname finals') in
                      String.equal a b
                      || QCheck2.Test.fail_reportf
                           "seed=%d var=%s: unopt=%s opt=%s" seed v.gname a b)
                    vars)))

let qtest t = QCheck_alcotest.to_alcotest t

let suite =
  [
    Alcotest.test_case "generated units round-trip unchanged" `Quick
      test_roundtrip_generated;
    Alcotest.test_case "verifier accepts every generated function" `Quick
      test_verifier_accepts_generated;
    Alcotest.test_case "verifier rejects ill-typed programs" `Quick
      test_verifier_rejects_bad_programs;
    Alcotest.test_case "MIR001: read before assignment" `Quick
      test_uninit_read;
    Alcotest.test_case "MIR001: &out-param regression" `Quick
      test_uninit_out_param_regression;
    Alcotest.test_case "MIR002: dead stores" `Quick test_dead_store;
    Alcotest.test_case "MIR003: unreachable statements" `Quick
      test_unreachable;
    Alcotest.test_case "MIR004: saturation prover verdicts" `Quick
      test_sat_prover;
    Alcotest.test_case "MIR rules surface through Check.run" `Quick
      test_mir_rules_in_check;
    Alcotest.test_case "opt: constant folding" `Quick test_const_fold;
    Alcotest.test_case "opt: copy propagation + DCE" `Quick
      test_copy_prop_and_dce;
    Alcotest.test_case "opt: saturation fusion" `Quick test_sat_fusion;
    Alcotest.test_case "opt: constant branch elimination" `Quick
      test_branch_elimination;
    Alcotest.test_case "opt: fixed servo stays MISRA-clean" `Quick
      test_opt_misra_clean;
    qtest prop_mir_c_roundtrip;
    qtest prop_opt_preserves_semantics;
  ]
