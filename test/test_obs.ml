(* The observability layer: histogram quantile accuracy, span
   nesting/ordering, the zero-allocation disabled path, and the
   Bench_json round-trip. Obs state is process-global, so every test
   starts from [Obs.reset] and restores [set_enabled false]. *)

let with_obs f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

(* log-scale buckets with 16 sub-buckets: <= ~6 % relative error *)
let close_rel ?(tol = 0.07) msg expected actual =
  if expected = 0.0 then Alcotest.(check (float 1e-9)) msg expected actual
  else
    let rel = Float.abs (actual -. expected) /. Float.abs expected in
    if rel > tol then
      Alcotest.failf "%s: expected ~%g, got %g (rel err %.3f > %.3f)" msg
        expected actual rel tol

let test_hist_uniform () =
  with_obs @@ fun () ->
  let h = Obs.hist "test.uniform" in
  for i = 1 to 10_000 do
    Obs.record h (float_of_int i)
  done;
  let s = Obs.hist_summary h in
  Alcotest.(check int) "count" 10_000 s.Obs.hs_count;
  Alcotest.(check (float 1e-9)) "min exact" 1.0 s.Obs.hs_min;
  Alcotest.(check (float 1e-9)) "max exact" 10_000.0 s.Obs.hs_max;
  close_rel ~tol:0.001 "mean exact" 5000.5 s.Obs.hs_mean;
  close_rel "p50" 5000.0 s.Obs.hs_p50;
  close_rel "p95" 9500.0 s.Obs.hs_p95;
  close_rel "p99" 9900.0 s.Obs.hs_p99;
  close_rel "p10" 1000.0 (Obs.hist_quantile h 0.10)

let test_hist_bimodal () =
  with_obs @@ fun () ->
  (* 90 % fast path at ~1 us, 10 % slow path at ~1 ms: the shape of a
     latency distribution with overruns *)
  let h = Obs.hist "test.bimodal" in
  for _ = 1 to 900 do
    Obs.record h 1e-6
  done;
  for _ = 1 to 100 do
    Obs.record h 1e-3
  done;
  let s = Obs.hist_summary h in
  close_rel "p50 in fast mode" 1e-6 s.Obs.hs_p50;
  close_rel "p95 in slow mode" 1e-3 s.Obs.hs_p95;
  close_rel "p99 in slow mode" 1e-3 s.Obs.hs_p99;
  Alcotest.(check (float 1e-12)) "max exact" 1e-3 s.Obs.hs_max;
  (* quantile edges *)
  close_rel "q=0 -> min" 1e-6 (Obs.hist_quantile h 0.0);
  close_rel "q=1 -> max" 1e-3 (Obs.hist_quantile h 1.0)

let test_hist_edge_cases () =
  with_obs @@ fun () ->
  let h = Obs.hist "test.edge" in
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (Obs.hist_quantile h 0.5);
  let s = Obs.hist_summary h in
  Alcotest.(check int) "empty count" 0 s.Obs.hs_count;
  (* non-positive and huge values must not crash or distort count *)
  Obs.record h 0.0;
  Obs.record h (-5.0);
  Obs.record h 1e300;
  let s = Obs.hist_summary h in
  Alcotest.(check int) "count with extremes" 3 s.Obs.hs_count;
  Alcotest.(check (float 1e280)) "max kept" 1e300 s.Obs.hs_max

let test_span_nesting () =
  with_obs @@ fun () ->
  Obs.span "outer" (fun () ->
      Obs.bump 2;
      Obs.span "inner" (fun () ->
          Obs.bump 5;
          ignore (Sys.opaque_identity (Array.make 10 0)));
      Obs.span "inner2" (fun () -> ()));
  let sps = Obs.spans () in
  Alcotest.(check int) "three spans" 3 (Array.length sps);
  (* completion order: inner, inner2, outer *)
  Alcotest.(check string) "first completed" "inner" sps.(0).Obs.sp_name;
  Alcotest.(check string) "second completed" "inner2" sps.(1).Obs.sp_name;
  Alcotest.(check string) "last completed" "outer" sps.(2).Obs.sp_name;
  Alcotest.(check int) "inner depth" 1 sps.(0).Obs.sp_depth;
  Alcotest.(check int) "outer depth" 0 sps.(2).Obs.sp_depth;
  Alcotest.(check int) "inner per-span count" 5 sps.(0).Obs.sp_count;
  Alcotest.(check int) "outer per-span count" 2 sps.(2).Obs.sp_count;
  let outer = sps.(2) and inner = sps.(0) in
  Alcotest.(check bool) "outer contains inner (start)" true
    (outer.Obs.sp_start_ns <= inner.Obs.sp_start_ns);
  Alcotest.(check bool) "outer at least as long" true
    (outer.Obs.sp_dur_ns >= inner.Obs.sp_dur_ns);
  Alcotest.(check bool) "durations non-negative" true
    (Array.for_all (fun sp -> sp.Obs.sp_dur_ns >= 0.0) sps)

let test_span_ring_eviction () =
  with_obs @@ fun () ->
  Obs.set_ring_capacity 8;
  for i = 1 to 20 do
    Obs.span (string_of_int i) (fun () -> ())
  done;
  let sps = Obs.spans () in
  Alcotest.(check int) "ring keeps capacity" 8 (Array.length sps);
  Alcotest.(check string) "oldest surviving" "13" sps.(0).Obs.sp_name;
  Alcotest.(check string) "newest" "20" sps.(7).Obs.sp_name;
  Obs.set_ring_capacity 8192

let test_chrome_trace_parses () =
  with_obs @@ fun () ->
  Obs.span "a" (fun () -> Obs.span "b with \"quotes\"" (fun () -> ()));
  let doc = Bench_json.parse (Obs.chrome_trace ()) in
  match Bench_json.member "traceEvents" doc with
  | Some (Bench_json.Arr events) ->
      (* process_name + one thread_name lane (single domain) + 2 spans *)
      Alcotest.(check int) "event count" 4 (List.length events);
      let names =
        List.filter_map (fun e -> Bench_json.member "name" e) events
      in
      Alcotest.(check bool) "escaped name round-trips" true
        (List.mem (Bench_json.Str "b with \"quotes\"") names);
      Alcotest.(check bool) "thread lane metadata present" true
        (List.mem (Bench_json.Str "thread_name") names)
  | _ -> Alcotest.fail "traceEvents missing"

let test_disabled_path_no_alloc () =
  Obs.reset ();
  Obs.set_enabled false;
  let c = Obs.counter "test.disabled" in
  let h = Obs.hist "test.disabled_h" in
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Obs.add c 1;
    Obs.record h 1.0;
    Obs.span_begin "x";
    Obs.bump 1;
    Obs.span_end ()
  done;
  let after = Gc.minor_words () in
  (* 50k disabled calls: any per-call allocation would show as >= 10k
     words; the slack absorbs the boxing of the two Gc readings *)
  Alcotest.(check bool) "no observable allocation" true (after -. before < 256.0);
  Alcotest.(check int) "counter untouched" 0 (Obs.counter_value c);
  Alcotest.(check int) "no spans recorded" 0 (Array.length (Obs.spans ()))

let test_counters_and_reset () =
  with_obs @@ fun () ->
  let c = Obs.counter "test.c" in
  Obs.add c 41;
  Obs.incr_counter "test.c";
  Obs.set_gauge "test.g" 2.5;
  Obs.record_named "test.h" 0.5;
  let snap = Obs.snapshot () in
  Alcotest.(check int) "counter via snapshot" 42
    (List.assoc "test.c" snap.Obs.counters);
  Alcotest.(check (float 1e-9)) "gauge via snapshot" 2.5
    (List.assoc "test.g" snap.Obs.gauges);
  Alcotest.(check int) "hist count via snapshot" 1
    (List.assoc "test.h" snap.Obs.hists).Obs.hs_count;
  Obs.reset ();
  let snap = Obs.snapshot () in
  Alcotest.(check int) "counter zeroed, name kept" 0
    (List.assoc "test.c" snap.Obs.counters);
  Alcotest.(check int) "hist zeroed, name kept" 0
    (List.assoc "test.h" snap.Obs.hists).Obs.hs_count;
  Alcotest.(check int) "counter handle survives" 0 (Obs.counter_value c)

let test_bench_json_roundtrip () =
  with_obs @@ fun () ->
  Obs.incr_counter ~by:7 "rt.counter";
  Obs.set_gauge "rt.gauge" 3.25;
  for i = 1 to 100 do
    Obs.record_named "rt.hist" (float_of_int i *. 1e-6)
  done;
  let doc =
    Bench_json.bench ~name:"rt" ~steps:1234 ~wall_s:0.5
      ~extra:[ ("note", Bench_json.Str "round\ntrip \"quoted\"") ]
      (Obs.snapshot ())
  in
  let text = Bench_json.to_string doc in
  let parsed = Bench_json.parse text in
  Alcotest.(check bool) "reparse equals original" true (parsed = doc);
  Alcotest.(check bool) "second serialisation stable" true
    (Bench_json.to_string parsed = text);
  (match Bench_json.member "steps_per_s" parsed with
  | Some (Bench_json.Float f) ->
      Alcotest.(check (float 1e-6)) "steps_per_s computed" 2468.0 f
  | _ -> Alcotest.fail "steps_per_s missing");
  (match Bench_json.member "histograms" parsed with
  | Some hists -> (
      match Bench_json.member "rt.hist" hists with
      | Some h -> (
          match Bench_json.member "count" h with
          | Some (Bench_json.Int 100) -> ()
          | _ -> Alcotest.fail "rt.hist count wrong")
      | None -> Alcotest.fail "rt.hist missing")
  | None -> Alcotest.fail "histograms missing");
  match Bench_json.member "git_rev" parsed with
  | Some (Bench_json.Str rev) ->
      Alcotest.(check bool) "git_rev non-empty" true (String.length rev > 0)
  | _ -> Alcotest.fail "git_rev missing"

let test_json_parser_rejects () =
  let rejects s =
    match Bench_json.parse s with
    | exception Bench_json.Parse_error _ -> ()
    | _ -> Alcotest.failf "parser accepted %S" s
  in
  rejects "";
  rejects "{";
  rejects "[1,]";
  rejects "{\"a\":}";
  rejects "tru";
  rejects "1 2";
  Alcotest.(check bool) "nested ok" true
    (Bench_json.parse "[{\"a\":[1,2.5,null,true,\"x\"]}]"
    = Bench_json.(Arr [ Obj [ ("a", Arr [ Int 1; Float 2.5; Null; Bool true; Str "x" ]) ] ]))

let test_flame_and_metrics_render () =
  with_obs @@ fun () ->
  Obs.span "root" (fun () -> Obs.span "leaf" (fun () -> ()));
  Obs.incr_counter ~by:3 "render.c";
  Obs.record_named "render.h" 1e-3;
  let flame = Obs_report.flame_summary (Obs.spans ()) in
  Alcotest.(check bool) "flame lists root" true
    (Astring_contains.contains flame "root");
  Alcotest.(check bool) "flame indents leaf" true
    (Astring_contains.contains flame "  leaf");
  let table = Obs_report.metrics_table (Obs.snapshot ()) in
  Alcotest.(check bool) "table lists counter" true
    (Astring_contains.contains table "render.c");
  Alcotest.(check bool) "table lists histogram" true
    (Astring_contains.contains table "render.h")

let suite =
  [
    Alcotest.test_case "histogram uniform quantiles" `Quick test_hist_uniform;
    Alcotest.test_case "histogram bimodal quantiles" `Quick test_hist_bimodal;
    Alcotest.test_case "histogram edge cases" `Quick test_hist_edge_cases;
    Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
    Alcotest.test_case "span ring eviction" `Quick test_span_ring_eviction;
    Alcotest.test_case "chrome trace parses" `Quick test_chrome_trace_parses;
    Alcotest.test_case "disabled path allocates nothing" `Quick
      test_disabled_path_no_alloc;
    Alcotest.test_case "counters, gauges, reset" `Quick test_counters_and_reset;
    Alcotest.test_case "bench json round-trip" `Quick test_bench_json_roundtrip;
    Alcotest.test_case "json parser rejects malformed" `Quick
      test_json_parser_rejects;
    Alcotest.test_case "flame + metrics render" `Quick
      test_flame_and_metrics_render;
  ]
