(* PIL co-simulation: the servo on the virtual MC56F8367 over RS-232. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let pil_cfg =
  { Servo_system.default_config with Servo_system.control_period = 5e-3 }

let run_pil ?(periods = 300) ?baud ?error_rate ?preemptive () =
  let b = Servo_system.build ~config:pil_cfg () in
  let comp = Compile.compile b.Servo_system.controller in
  let a = Pil_target.generate ~name:"servo" ~project:b.Servo_system.project comp in
  let controller = Sim.create comp in
  let plant = Servo_system.pil_plant b in
  let driver = Servo_system.pil_driver b in
  ( b,
    Pil_cosim.run ?baud ?error_rate ?preemptive ~mcu:pil_cfg.Servo_system.mcu
      ~schedule:a.Target.schedule ~controller ~plant ~driver ~periods () )

let test_pil_converges () =
  let _, r = run_pil ~periods:300 () in
  let speed = Servo_system.pil_speed_trace r.Pil_cosim.trace in
  match List.rev speed with
  | (_, w) :: _ ->
      Alcotest.(check (float 5.0)) "tracks the final set-point" 150.0 w
  | [] -> Alcotest.fail "no trace"

let test_pil_vs_mil_deviation () =
  (* the PIL trajectory must stay close to MIL: quantisation and the
     one-period actuator latency bound the deviation *)
  let b = Servo_system.build ~config:pil_cfg () in
  let mil_speed, _ = Servo_system.mil_run b ~t_end:1.5 in
  let _, r = run_pil ~periods:300 () in
  let pil_speed = Servo_system.pil_speed_trace r.Pil_cosim.trace in
  (* compare at matching times (PIL trace is per control period) *)
  let mil_at t =
    List.fold_left
      (fun best (ti, w) ->
        match best with
        | Some (tb, _) when Float.abs (ti -. t) >= Float.abs (tb -. t) -> best
        | _ -> Some (ti, w))
      None mil_speed
    |> Option.map snd
  in
  let max_dev =
    List.fold_left
      (fun acc (t, w) ->
        match mil_at t with
        | Some wm -> Float.max acc (Float.abs (w -. wm))
        | None -> acc)
      0.0
      (* skip the first 50 ms transient where one-period shifts dominate *)
      (List.filter (fun (t, _) -> t > 0.05) pil_speed)
  in
  check_bool "PIL within 12 rad/s of MIL" true (max_dev < 12.0)

let test_pil_profile_contents () =
  let _, r = run_pil ~periods:200 () in
  let p = r.Pil_cosim.profile in
  check_bool "exec time plausible" true
    (p.Pil_cosim.controller_exec.Stats.mean > 1e-6
     && p.Pil_cosim.controller_exec.Stats.mean < 1e-3);
  check_bool "latency after comm" true
    (p.Pil_cosim.response_latency.Stats.p50 > p.Pil_cosim.comm_time_per_period /. 2.0);
  check_bool "latency within period" true
    (p.Pil_cosim.response_latency.Stats.max < 5e-3);
  check_int "no overruns" 0 p.Pil_cosim.overruns;
  check_int "no crc errors" 0 p.Pil_cosim.crc_errors;
  check_bool "stack watermark measured" true (p.Pil_cosim.max_stack_bytes > 96);
  check_bool "cpu mostly idle" true (p.Pil_cosim.cpu_utilization < 0.2)

let test_pil_baud_feasibility () =
  (* at 9600 baud the two packets cannot fit into 5 ms *)
  match run_pil ~baud:9600 () with
  | exception Invalid_argument msg ->
      check_bool "explains the minimum period" true
        (Astring_contains.contains msg "minimum feasible period")
  | _ -> Alcotest.fail "infeasible baud accepted"

let test_pil_error_injection () =
  let _, r = run_pil ~periods:300 ~error_rate:0.01 () in
  let p = r.Pil_cosim.profile in
  check_bool "crc errors observed" true (p.Pil_cosim.crc_errors > 0);
  check_bool "corrupted periods overrun" true (p.Pil_cosim.overruns > 0);
  (* the loop must survive: the motor still spins roughly at set-point *)
  match List.rev (Servo_system.pil_speed_trace r.Pil_cosim.trace) with
  | (_, w) :: _ -> check_bool "loop survives noise" true (Float.abs (w -. 150.0) < 20.0)
  | [] -> Alcotest.fail "no trace"

let test_pil_comm_accounting () =
  let _, r = run_pil ~periods:50 () in
  let p = r.Pil_cosim.profile in
  (* 2 sensors (2B each) + 1 actuator: sensor pkt 6+4=10B, actuator 6+2=8B
     before stuffing *)
  check_bool "bytes per period >= raw size" true (p.Pil_cosim.comm_bytes_per_period >= 18);
  Alcotest.(check (float 1e-9)) "comm time consistent"
    (float_of_int p.Pil_cosim.comm_bytes_per_period *. 10.0 /. 115200.0)
    p.Pil_cosim.comm_time_per_period

let test_pil_fixed_point_variant () =
  let cfg = { pil_cfg with Servo_system.variant = Servo_system.Fixed_pid } in
  let b = Servo_system.build ~config:cfg () in
  let comp = Compile.compile b.Servo_system.controller in
  let a = Pil_target.generate ~name:"servofx" ~project:b.Servo_system.project comp in
  let controller = Sim.create comp in
  let plant = Servo_system.pil_plant b in
  let driver = Servo_system.pil_driver b in
  let r =
    Pil_cosim.run ~mcu:cfg.Servo_system.mcu ~schedule:a.Target.schedule
      ~controller ~plant ~driver ~periods:300 ()
  in
  match List.rev (Servo_system.pil_speed_trace r.Pil_cosim.trace) with
  | (_, w) :: _ ->
      Alcotest.(check (float 6.0)) "fixed-point PIL tracks" 150.0 w
  | [] -> Alcotest.fail "no trace"

let test_pil_duplicate_frames_idempotent () =
  (* every sensor frame transmitted twice: the target's sequence-number
     deduplication must step the controller exactly once per period, so
     the closed-loop trajectory is identical to the clean run *)
  let _, clean = run_pil ~periods:200 () in
  let b = Servo_system.build ~config:pil_cfg () in
  let comp = Compile.compile b.Servo_system.controller in
  let a = Pil_target.generate ~name:"servo" ~project:b.Servo_system.project comp in
  let controller = Sim.create comp in
  let plant = Servo_system.pil_plant b in
  let driver = Servo_system.pil_driver b in
  let dup =
    Pil_cosim.run ~dup_frames:true ~mcu:pil_cfg.Servo_system.mcu
      ~schedule:a.Target.schedule ~controller ~plant ~driver ~periods:200 ()
  in
  check_int "no overruns with duplicated frames" 0
    dup.Pil_cosim.profile.Pil_cosim.overruns;
  let speeds r = List.map snd (Servo_system.pil_speed_trace r.Pil_cosim.trace) in
  let pairs = List.combine (speeds clean) (speeds dup) in
  List.iter
    (fun (a, b) ->
      Alcotest.(check (float 1e-9)) "trajectory unchanged by duplicates" a b)
    pairs

let test_pil_timeout_holds_last_actuator () =
  (* heavy noise: periods whose frames die must reuse the previous
     actuator command (frame hold), never a stale mis-parse or a crash *)
  let _, r = run_pil ~periods:300 ~error_rate:0.05 () in
  let p = r.Pil_cosim.profile in
  check_bool "overruns under heavy noise" true (p.Pil_cosim.overruns > 0);
  check_bool "crc rejections counted" true (p.Pil_cosim.crc_errors > 0);
  (* the held-frame policy keeps the loop alive and bounded *)
  List.iter
    (fun (_, obs) ->
      List.iter
        (fun (_, v) -> check_bool "observation finite" true (Float.is_finite v))
        obs)
    r.Pil_cosim.trace

let suite =
  [
    Alcotest.test_case "pil converges" `Quick test_pil_converges;
    Alcotest.test_case "pil vs mil" `Quick test_pil_vs_mil_deviation;
    Alcotest.test_case "profile contents" `Quick test_pil_profile_contents;
    Alcotest.test_case "baud feasibility" `Quick test_pil_baud_feasibility;
    Alcotest.test_case "error injection" `Quick test_pil_error_injection;
    Alcotest.test_case "comm accounting" `Quick test_pil_comm_accounting;
    Alcotest.test_case "fixed-point PIL" `Quick test_pil_fixed_point_variant;
    Alcotest.test_case "duplicated frames idempotent" `Quick
      test_pil_duplicate_frames_idempotent;
    Alcotest.test_case "timeout holds last actuator frame" `Quick
      test_pil_timeout_holds_last_actuator;
  ]
