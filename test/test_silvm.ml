(* SIL virtual machine: interpreting the generated C and checking it
   bit-for-bit against the MIL engine. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mcu = Mcu_db.mc56f8367

(* ---------------- interpreter unit tests ---------------- *)

let interp_of_items items =
  let t = Silvm_interp.create () in
  Silvm_interp.add_unit t { C_ast.unit_name = "t.c"; items };
  t

let call_int t fn args =
  match Silvm_interp.call t fn args with
  | Some v -> Silvm_value.to_int v
  | None -> Alcotest.fail (fn ^ " returned void")

let test_interp_c_arithmetic () =
  (* C99 semantics: truncating division, remainder with the dividend's
     sign, unsigned wrap-around, arithmetic right shift *)
  let open C_ast in
  let f name ret expr = Func_def (func ret name [ (I32, "a"); (I32, "b") ] [ Return (Some expr) ]) in
  let t =
    interp_of_items
      [
        f "div" I32 (Bin ("/", Var "a", Var "b"));
        f "rem" I32 (Bin ("%", Var "a", Var "b"));
        f "wrap16" U16 (Cast_to (U16, Bin ("+", Var "a", Var "b")));
        f "asr" I32 (Bin (">>", Var "a", Var "b"));
        f "wrap_i16" I16 (Cast_to (I16, Bin ("*", Var "a", Var "b")));
      ]
  in
  let i v = Silvm_value.of_int Silvm_value.i32ty v in
  check_int "trunc div" (-3) (call_int t "div" [ i (-7); i 2 ]);
  check_int "rem sign" (-1) (call_int t "rem" [ i (-7); i 2 ]);
  check_int "u16 wrap" 65535 (call_int t "wrap16" [ i 0; i (-1) ]);
  check_int "u16 wrap 2" 4464 (call_int t "wrap16" [ i 70000; i 0 ]);
  check_int "arith shift" (-2) (call_int t "asr" [ i (-8); i 2 ]);
  check_int "i16 wrap positive" 24464 (call_int t "wrap_i16" [ i 300; i 300 ]);
  check_int "i16 wrap negative" (-29536) (call_int t "wrap_i16" [ i 300; i 120 ])

let test_interp_sat_helpers () =
  (* the generated saturation helpers run under the interpreter with
     the exact pe_sat16 / pe_sat_add32 semantics *)
  let open C_ast in
  let t =
    interp_of_items
      [
        Func_def
          (func I16 "sat16_probe"
             [ (I32, "x") ]
             [
               Return
                 (Some
                    (Cast_to
                       ( I16,
                         Ternary
                           ( Bin (">", Var "x", Int_lit 32767),
                             Int_lit 32767,
                             Ternary
                               ( Bin ("<", Var "x", Int_lit (-32768)),
                                 Int_lit (-32768),
                                 Var "x" ) ) )));
             ]);
        Func_def
          (func I32 "sat_add_probe"
             [ (I32, "a"); (I32, "b") ]
             [
               Decl
                 ( Named "int64_t",
                   "s",
                   Some (Bin ("+", Cast_to (Named "int64_t", Var "a"), Var "b"))
                 );
               Return
                 (Some
                    (Cast_to
                       ( I32,
                         Ternary
                           ( Bin (">", Var "s", Var "INT32_MAX"),
                             Var "INT32_MAX",
                             Ternary
                               ( Bin ("<", Var "s", Var "INT32_MIN"),
                                 Var "INT32_MIN",
                                 Var "s" ) ) )));
             ]);
      ]
  in
  let i v = Silvm_value.of_int Silvm_value.i32ty v in
  check_int "sat16 high" 32767 (call_int t "sat16_probe" [ i 100000 ]);
  check_int "sat16 low" (-32768) (call_int t "sat16_probe" [ i (-100000) ]);
  check_int "sat16 pass" 1234 (call_int t "sat16_probe" [ i 1234 ]);
  check_int "sat_add32 overflow" 2147483647
    (call_int t "sat_add_probe" [ i 2000000000; i 2000000000 ]);
  check_int "sat_add32 underflow" (-2147483648)
    (call_int t "sat_add_probe" [ i (-2000000000); i (-2000000000) ]);
  check_int "sat_add32 plain" 30 (call_int t "sat_add_probe" [ i 10; i 20 ])

let test_interp_cast_helpers_match_value () =
  (* the emitted pe_cast_* helpers must reproduce Value.of_float
     exactly: round half away from zero, saturate, NaN -> 0 *)
  let t = interp_of_items Blockgen.cast_helpers in
  let cases = [ 100.6; -100.6; 0.5; -0.5; 1.5; 2.5; 70000.0; -70000.0;
                1e12; -1e12; Float.nan; 0.0; 65534.5 ] in
  List.iter
    (fun dt ->
      let helper = Option.get (Blockgen.cast_helper_of_dtype dt) in
      List.iter
        (fun x ->
          let expected = Value.to_int (Value.of_float dt x) in
          let got = call_int t helper [ Silvm_value.VF x ] in
          check_int
            (Printf.sprintf "%s(%g) = Value.of_float" helper x)
            expected got)
        cases)
    [ Dtype.Int8; Dtype.Uint8; Dtype.Int16; Dtype.Uint16; Dtype.Int32;
      Dtype.Uint32; Dtype.Bool ]

(* ---------------- differential runs ---------------- *)

let empty_project () = Bean_project.create mcu

(* this file is the INTERPRETER's suite: every differential run is
   pinned to [~engine:Interp] so the C-AST interpreter stays covered now
   that the compiled engine is the default; the compiled engine has its
   own battery in test_silvm_compile.ml *)
let diff_model ?steps ?float_mode ?opt ?stimulus ~name m =
  let comp = Compile.compile ~default_dt:0.01 m in
  Silvm_diff.run ?steps ?float_mode ?opt ~engine:Silvm_diff.Interp ?stimulus
    ~name ~project:(empty_project ()) comp

let check_no_divergence what (r : Silvm_diff.report) =
  (match r.Silvm_diff.divergence with
  | Some d ->
      Alcotest.failf "%s diverged at step %d on %s[%d]: MIL=%s SIL=%s" what
        d.Silvm_diff.d_step d.Silvm_diff.d_block d.Silvm_diff.d_port
        d.Silvm_diff.d_mil d.Silvm_diff.d_sil
  | None -> ());
  check_int (what ^ " completed") r.Silvm_diff.steps_requested
    r.Silvm_diff.steps_run

(* regression: quantised Cast outputs used to be emitted as a plain C
   cast (truncate, wrap) where the MIL engine rounds and saturates;
   const 100.6 -> uint16 must be 101 (not 100) and 70000 -> uint16 must
   saturate to 65535 (not wrap to 4464) in both worlds *)
let test_cast_quantization_regression () =
  let m = Model.create "castreg" in
  let c1 = Model.add m ~name:"c1" (Sources.constant 100.6) in
  let k1 = Model.add m ~name:"k1" (Math_blocks.cast Dtype.Uint16) in
  Model.connect m ~src:(c1, 0) ~dst:(k1, 0);
  let c2 = Model.add m ~name:"c2" (Sources.constant 70000.0) in
  let k2 = Model.add m ~name:"k2" (Math_blocks.cast Dtype.Uint16) in
  Model.connect m ~src:(c2, 0) ~dst:(k2, 0);
  let c3 = Model.add m ~name:"c3" (Sources.constant (-2.5)) in
  let k3 = Model.add m ~name:"k3" (Math_blocks.cast Dtype.Int8) in
  Model.connect m ~src:(c3, 0) ~dst:(k3, 0);
  let comp = Compile.compile ~default_dt:0.01 m in
  let app =
    Silvm_app.create ~engine:`Interp ~name:"castreg"
      ~project:(empty_project ()) comp
  in
  Silvm_app.initialize app;
  Silvm_app.step app;
  check_int "100.6 -> u16 rounds" 101
    (Silvm_value.to_int (Silvm_app.signal app (k1, 0)));
  check_int "70000 -> u16 saturates" 65535
    (Silvm_value.to_int (Silvm_app.signal app (k2, 0)));
  check_int "-2.5 -> i8 rounds away from zero" (-3)
    (Silvm_value.to_int (Silvm_app.signal app (k3, 0)));
  (* and the emitted source goes through the helper *)
  let c_src = C_print.print_unit (Target.generate ~mode:Blockgen.Pil
    ~name:"castreg" ~project:(empty_project ()) comp).Target.model_c in
  check_bool "generated C uses pe_cast_u16" true
    (Astring_contains.contains c_src "pe_cast_u16");
  check_no_divergence "castreg" (diff_model ~steps:50 ~name:"castreg" m)

(* servo: the paper's running example, full generated application
   against the MIL engine in closed loop with the DC-motor plant *)
let servo_diff steps =
  let b = Servo_system.build () in
  let comp = Compile.compile b.Servo_system.controller in
  let plant = Servo_system.pil_plant b in
  let driver = Servo_system.pil_driver b in
  Silvm_diff.run ~steps ~engine:Silvm_diff.Interp
    ~plant:(Silvm_diff.Plant (plant, driver))
    ~name:"servo" ~project:b.Servo_system.project comp

let test_servo_diff_1000 () =
  check_no_divergence "servo MIL vs SIL" (servo_diff 1000)

(* isr-demo: an ADC end-of-conversion event triggers a function-call
   group; the group function must fire in the interpreted application
   exactly as the MIL engine fires the event *)
let test_isr_demo_diff () =
  let m, project = Check.hazard_demo ~mcu () in
  let comp = Compile.compile m in
  let stimulus k =
    (* a deterministic sweep across the 12-bit ADC range *)
    let code = (k * 37) mod 4096 in
    [| code |]
  in
  let r =
    Silvm_diff.run ~steps:500 ~engine:Silvm_diff.Interp ~stimulus
      ~name:"isr_demo" ~project comp
  in
  check_no_divergence "isr-demo MIL vs SIL" r

(* ---------------- golden SIL trace ---------------- *)

(* The servo generated application interpreted for 1000 steps in closed
   loop: the PWM duty-ratio command (the u16 written to the actuator
   exchange buffer) is locked as a golden trace. Captured from the SIL
   interpreter at the time the differential suite first went green; the
   MIL goldens in test_sim_golden.ml pin the other side. *)
let golden_sil_duty : int * (int * int) list =
  ( 12240280,
    [
      (0, 4096);
      (1, 4440);
      (100, 7079);
      (250, 7129);
      (500, 14183);
      (750, 14243);
      (998, 20117);
      (999, 20068);
    ] )

let test_servo_sil_golden () =
  let b = Servo_system.build () in
  let comp = Compile.compile b.Servo_system.controller in
  let plant = Servo_system.pil_plant b in
  let driver = Servo_system.pil_driver b in
  let app =
    Silvm_app.create ~engine:`Interp ~name:"servo"
      ~project:b.Servo_system.project comp
  in
  Silvm_app.initialize app;
  let sched = Silvm_app.schedule app in
  let base = comp.Compile.base_dt in
  let duties = Array.make 1000 0 in
  for k = 0 to 999 do
    let sensors =
      driver.Pil_cosim.read_sensors plant ~time:(float_of_int k *. base)
    in
    List.iter
      (fun (_, slot) -> Silvm_app.set_sensor app slot sensors.(slot))
      sched.Target.sensor_slots;
    Silvm_app.step app;
    duties.(k) <- Silvm_app.actuator app 0;
    driver.Pil_cosim.apply_actuators plant [| duties.(k) |];
    driver.Pil_cosim.advance plant ~dt:base
  done;
  if Sys.getenv_opt "SILVM_PRINT_GOLDEN" <> None then
    Printf.eprintf "sum=%d spots=[%s]\n%!"
      (Array.fold_left ( + ) 0 duties)
      (String.concat "; "
         (List.map
            (fun i -> Printf.sprintf "(%d, %d)" i duties.(i))
            [ 0; 1; 100; 250; 500; 750; 998; 999 ]));
  let sum, spots = golden_sil_duty in
  check_int "duty trace checksum" sum (Array.fold_left ( + ) 0 duties);
  List.iter
    (fun (i, expected) ->
      check_int (Printf.sprintf "duty[%d]" i) expected duties.(i))
    spots

(* ---------------- differential fuzzing ----------------

   Known SIL non-goals the generators deliberately avoid (the
   authoritative list, referenced from the README): UniformNoise (the
   engine-side RNG is not part of the generated application), Lookup1D
   in Raw mode, Single-typed signals end-to-end, the fixed-point PID's
   pe_mul_shift rounding mode, 64-bit unsigned arithmetic, and
   multirate regrouping. Diagrams containing these still generate code;
   they are just not claimed bit-exact and not drawn by the fuzzers. *)

let fuzz_count =
  match Sys.getenv_opt "SILVM_FUZZ_COUNT" with
  | Some s -> (try int_of_string s with _ -> 200)
  | None -> 200

(* the interpreter walks the AST per step, so its smoke stays at the
   historical count; the 10× budget goes to the compiled engine's
   sharded battery (test_silvm_compile.ml), where it is affordable *)
let interp_fuzz_count = min fuzz_count 200

(* the random-diagram generator of test_model_fuzz, checked bit-for-bit:
   every float operation of the block library is emitted with the same
   association and constants the engine computes with *)
let prop_dag_mil_sil_bit_exact =
  QCheck2.Test.make
    ~name:"random acyclic diagrams: MIL and SIL agree bit-for-bit (500 steps)"
    ~count:interp_fuzz_count
    QCheck2.Gen.(pair (int_range 1 100000) (int_range 1 18))
    (fun (seed, size) ->
      let m = Test_model_fuzz.random_dag ~seed ~size in
      let r = diff_model ~steps:500 ~name:"fuzz" m in
      match r.Silvm_diff.divergence with
      | None -> true
      | Some d ->
          QCheck2.Test.fail_reportf
            "seed=%d size=%d diverged at step %d on %s[%d]: MIL=%s SIL=%s"
            seed size d.Silvm_diff.d_step d.Silvm_diff.d_block
            d.Silvm_diff.d_port d.Silvm_diff.d_mil d.Silvm_diff.d_sil)

(* an integer-typed variant: quantised casts at random points make the
   wrap/round/saturate paths load-bearing *)
let random_int_dag ~seed ~size =
  let rng = Random.State.make [| seed; 4242 |] in
  let m = Model.create (Printf.sprintf "ifuzz%d" seed) in
  let outputs = ref [] in
  let s1 = Model.add m (Sources.constant 1.25) in
  let s2 = Model.add m (Sources.sine ~amp:1000.0 ()) in
  outputs := [ (s1, 0); (s2, 0) ];
  let int_dtypes =
    [| Dtype.Int8; Dtype.Uint8; Dtype.Int16; Dtype.Uint16; Dtype.Int32 |]
  in
  for _ = 1 to size do
    let pick = Random.State.int rng 7 in
    let spec =
      match pick with
      | 0 -> Math_blocks.cast int_dtypes.(Random.State.int rng 5)
      | 1 -> Math_blocks.gain (Random.State.float rng 400.0 -. 200.0)
      | 2 -> Math_blocks.sum "+-"
      | 3 -> Discrete_blocks.unit_delay ()
      | 4 -> Nonlinear_blocks.saturation ~lo:(-500.0) ~hi:500.0
      | 5 -> Math_blocks.abs_block
      | _ -> Math_blocks.cast Dtype.Uint16
    in
    let blk = Model.add m spec in
    for p = 0 to spec.Block.n_in - 1 do
      let src = List.nth !outputs (Random.State.int rng (List.length !outputs)) in
      Model.connect m ~src ~dst:(blk, p)
    done;
    for p = 0 to spec.Block.n_out - 1 do
      outputs := (blk, p) :: !outputs
    done
  done;
  m

let prop_int_dag_mil_sil_bit_exact =
  QCheck2.Test.make
    ~name:"random quantised diagrams: MIL and SIL agree bit-for-bit (500 steps)"
    ~count:interp_fuzz_count
    QCheck2.Gen.(pair (int_range 1 100000) (int_range 1 18))
    (fun (seed, size) ->
      let m = random_int_dag ~seed ~size in
      let r = diff_model ~steps:500 ~name:"ifuzz" m in
      match r.Silvm_diff.divergence with
      | None -> true
      | Some d ->
          QCheck2.Test.fail_reportf
            "seed=%d size=%d diverged at step %d on %s[%d]: MIL=%s SIL=%s"
            seed size d.Silvm_diff.d_step d.Silvm_diff.d_block
            d.Silvm_diff.d_port d.Silvm_diff.d_mil d.Silvm_diff.d_sil)

(* the MIR optimization passes must be invisible to the differential:
   the SIL side runs the --opt generated code against the unchanged
   MIL engine, so any folding/propagation/fusion bug that alters a
   single bit of a single signal surfaces here *)
let test_servo_diff_opt () =
  let run variant what =
    let config = { Servo_system.default_config with Servo_system.variant } in
    let b = Servo_system.build ~config () in
    let comp = Compile.compile b.Servo_system.controller in
    let plant = Servo_system.pil_plant b in
    let driver = Servo_system.pil_driver b in
    let r =
      Silvm_diff.run ~steps:500 ~opt:true
        ~plant:(Silvm_diff.Plant (plant, driver))
        ~name:"servo" ~project:b.Servo_system.project comp
    in
    check_no_divergence what r
  in
  run Servo_system.Float_pid "servo float --opt";
  run Servo_system.Fixed_pid "servo fixed --opt"

let prop_int_dag_opt_bit_exact =
  QCheck2.Test.make
    ~name:
      "random quantised diagrams: optimized SIL stays bit-exact (500 steps)"
    ~count:(max 20 (interp_fuzz_count / 2))
    QCheck2.Gen.(pair (int_range 200001 300000) (int_range 1 18))
    (fun (seed, size) ->
      let m = random_int_dag ~seed ~size in
      let r = diff_model ~steps:500 ~opt:true ~name:"ofuzz" m in
      match r.Silvm_diff.divergence with
      | None -> true
      | Some d ->
          QCheck2.Test.fail_reportf
            "--opt seed=%d size=%d diverged at step %d on %s[%d]: MIL=%s SIL=%s"
            seed size d.Silvm_diff.d_step d.Silvm_diff.d_block
            d.Silvm_diff.d_port d.Silvm_diff.d_mil d.Silvm_diff.d_sil)

(* float variant with ULP tolerance, as a robustness margin for
   platforms whose libm differs from the one OCaml links *)
let prop_dag_mil_sil_ulp =
  QCheck2.Test.make
    ~name:"random float diagrams: MIL and SIL within 4 ULP (500 steps)"
    ~count:(max 20 (interp_fuzz_count / 3))
    QCheck2.Gen.(pair (int_range 100001 200000) (int_range 1 18))
    (fun (seed, size) ->
      let m = Test_model_fuzz.random_dag ~seed ~size in
      let r = diff_model ~steps:500 ~float_mode:(Silvm_diff.Ulp 4) ~name:"ufuzz" m in
      r.Silvm_diff.divergence = None)

let qtest t = QCheck_alcotest.to_alcotest t

let suite =
  [
    Alcotest.test_case "interp: C99 integer arithmetic" `Quick
      test_interp_c_arithmetic;
    Alcotest.test_case "interp: pe_sat16 / pe_sat_add32 semantics" `Quick
      test_interp_sat_helpers;
    Alcotest.test_case "interp: pe_cast_* replicate Value.of_float" `Quick
      test_interp_cast_helpers_match_value;
    Alcotest.test_case "regression: Cast output quantisation" `Quick
      test_cast_quantization_regression;
    Alcotest.test_case "servo: 1000-step MIL vs SIL, zero divergence" `Slow
      test_servo_diff_1000;
    Alcotest.test_case "isr-demo: event groups fire identically" `Quick
      test_isr_demo_diff;
    Alcotest.test_case "servo: golden SIL PWM duty trace" `Slow
      test_servo_sil_golden;
    Alcotest.test_case "servo: MIL vs optimized SIL, zero divergence" `Quick
      test_servo_diff_opt;
    qtest prop_dag_mil_sil_bit_exact;
    qtest prop_int_dag_mil_sil_bit_exact;
    qtest prop_int_dag_opt_bit_exact;
    qtest prop_dag_mil_sil_ulp;
  ]
