(* Compiled SIL execution: the closure compiler checked bit-for-bit
   against the interpreter AND the MIL engine.

   Every differential here runs [Silvm_diff.Both]: MIL vs compiled in
   lock-step, with a shadow interpreter the compiled engine must match
   bit-identically on every block output of every step. A compiled-vs-
   interpreted mismatch surfaces as a divergence whose MIL column is
   prefixed "interp:", so the two failure modes are distinguishable in
   the report. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mcu = Mcu_db.mc56f8367
let empty_project () = Bean_project.create mcu

let diff_both ?steps ?opt ?stimulus ~name m =
  let comp = Compile.compile ~default_dt:0.01 m in
  Silvm_diff.run ?steps ?opt ~engine:Silvm_diff.Both ?stimulus ~name
    ~project:(empty_project ()) comp

let fail_divergence what seed size (d : Silvm_diff.divergence) =
  QCheck2.Test.fail_reportf
    "seed=%d size=%d diverged at step %d on %s[%d]: %s vs SIL=%s" seed size
    d.Silvm_diff.d_step d.Silvm_diff.d_block d.Silvm_diff.d_port
    d.Silvm_diff.d_mil d.Silvm_diff.d_sil what

(* ---------------- equivalence properties ---------------- *)

(* moderate counts here: the 10× SILVM_FUZZ_COUNT budget is consumed by
   the Exec_pool-sharded battery below, where parallelism pays for it *)
let prop_count = max 20 (Test_silvm.fuzz_count / 10)

let prop_compiled_interp_float =
  QCheck2.Test.make
    ~name:
      "random float diagrams: compiled and interpreted SIL bit-identical \
       (tri-lockstep, 300 steps)"
    ~count:prop_count
    QCheck2.Gen.(pair (int_range 300001 400000) (int_range 1 18))
    (fun (seed, size) ->
      let m = Test_model_fuzz.random_dag ~seed ~size in
      let r = diff_both ~steps:300 ~name:"cfuzz" m in
      match r.Silvm_diff.divergence with
      | None -> true
      | Some d -> fail_divergence "(float dag)" seed size d)

let prop_compiled_interp_int =
  QCheck2.Test.make
    ~name:
      "random quantised diagrams: compiled and interpreted SIL bit-identical \
       (tri-lockstep, 300 steps)"
    ~count:prop_count
    QCheck2.Gen.(pair (int_range 400001 500000) (int_range 1 18))
    (fun (seed, size) ->
      let m = Test_silvm.random_int_dag ~seed ~size in
      let r = diff_both ~steps:300 ~name:"cifuzz" m in
      match r.Silvm_diff.divergence with
      | None -> true
      | Some d -> fail_divergence "(int dag)" seed size d)

(* ---------------- tri-lockstep goldens ---------------- *)

let servo_both ?(fixed = false) steps =
  let config =
    if fixed then
      { Servo_system.default_config with
        Servo_system.variant = Servo_system.Fixed_pid }
    else Servo_system.default_config
  in
  let b = Servo_system.build ~config () in
  let comp = Compile.compile b.Servo_system.controller in
  let plant = Servo_system.pil_plant b in
  let driver = Servo_system.pil_driver b in
  Silvm_diff.run ~steps ~engine:Silvm_diff.Both
    ~plant:(Silvm_diff.Plant (plant, driver))
    ~name:"servo" ~project:b.Servo_system.project comp

let test_servo_both_1000 () =
  Test_silvm.check_no_divergence "servo tri-lockstep (float)"
    (servo_both 1000)

let test_servo_fixed_both_1000 () =
  Test_silvm.check_no_divergence "servo tri-lockstep (fixed)"
    (servo_both ~fixed:true 1000)

let test_isr_demo_both_1000 () =
  let m, project = Check.hazard_demo ~mcu () in
  let comp = Compile.compile m in
  let stimulus k = [| k * 37 mod 4096 |] in
  let r =
    Silvm_diff.run ~steps:1000 ~engine:Silvm_diff.Both ~stimulus
      ~name:"isr_demo" ~project comp
  in
  Test_silvm.check_no_divergence "isr-demo tri-lockstep" r

(* ---------------- batched Bigarray path ---------------- *)

(* the servo PWM duty trace through [run_n_steps]: the compiled engine's
   batched path must reproduce the interpreter's golden trace (same
   checksum, same spot values) and the whole 1000×1 actuator trace must
   be byte-identical to an interpreted run under the vectorized
   comparison *)
let servo_trace engine =
  let b = Servo_system.build () in
  let comp = Compile.compile b.Servo_system.controller in
  let plant = Servo_system.pil_plant b in
  let driver = Servo_system.pil_driver b in
  let app =
    Silvm_app.create ~engine ~name:"servo" ~project:b.Servo_system.project
      comp
  in
  Silvm_app.initialize app;
  let base = comp.Compile.base_dt in
  let stimulus k =
    driver.Pil_cosim.read_sensors plant ~time:(float_of_int k *. base)
  in
  let feedback _ row =
    driver.Pil_cosim.apply_actuators plant row;
    driver.Pil_cosim.advance plant ~dt:base
  in
  Silvm_app.run_n_steps ~stimulus ~feedback app 1000

let test_batched_golden_duty () =
  let trace = servo_trace `Compiled in
  check_int "trace steps" 1000 (Bigarray.Array2.dim1 trace);
  let sum = ref 0 in
  for k = 0 to 999 do
    sum := !sum + Bigarray.Array2.get trace k 0
  done;
  let golden_sum, spots = Test_silvm.golden_sil_duty in
  check_int "batched duty trace checksum" golden_sum !sum;
  List.iter
    (fun (i, expected) ->
      check_int
        (Printf.sprintf "batched duty[%d]" i)
        expected
        (Bigarray.Array2.get trace i 0))
    spots

let test_batched_traces_identical () =
  let compiled = servo_trace `Compiled in
  let interp = servo_trace `Interp in
  (match Silvm_app.compare_traces compiled interp with
  | None -> ()
  | Some (k, s) ->
      Alcotest.failf
        "compiled and interpreted traces differ at step %d slot %d: %d vs %d"
        k s
        (Bigarray.Array2.get compiled k s)
        (Bigarray.Array2.get interp k s));
  (* and the comparator actually detects a flipped word *)
  Bigarray.Array2.set interp 500 0 (Bigarray.Array2.get interp 500 0 lxor 1);
  check_bool "comparator catches a 1-bit flip" true
    (Silvm_app.compare_traces compiled interp = Some (500, 0))

(* ---------------- sharded differential-fuzz battery ----------------

   The SILVM_FUZZ_COUNT budget (10× in CI) runs here, sharded over
   Exec_pool. Per-case seeds are derived from the root seed by index —
   a Weyl sequence, so the case list is a pure function of (root,
   count) and the battery's outcome cannot depend on --jobs or on the
   pool's schedule. *)

let root_seed = 0xEC5D

let case_seed i = (root_seed + (i * 0x9E3779B9)) land 0x3FFFFFFF

(* one tri-lockstep case: even indices draw from the float-dag
   generator, odd from the quantised one; the rendered outcome is a
   canonical string so whole batteries can be compared byte-wise *)
let run_case i =
  let seed = case_seed i in
  let size = 1 + (seed mod 18) in
  let m =
    if i mod 2 = 0 then
      Test_model_fuzz.random_dag ~seed:(1 + (seed mod 100000)) ~size
    else Test_silvm.random_int_dag ~seed ~size
  in
  let r = diff_both ~steps:200 ~name:(Printf.sprintf "sfuzz%d" i) m in
  match r.Silvm_diff.divergence with
  | None -> Printf.sprintf "%d:ok" i
  | Some d ->
      Printf.sprintf "%d:step=%d block=%s port=%d %s vs %s" i
        d.Silvm_diff.d_step d.Silvm_diff.d_block d.Silvm_diff.d_port
        d.Silvm_diff.d_mil d.Silvm_diff.d_sil

let run_battery ~jobs count =
  if jobs <= 1 then Array.init count run_case
  else
    Exec_pool.with_pool ~workers:jobs (fun pool ->
        Exec_pool.run_map pool count run_case)

let test_sharded_fuzz_battery () =
  let count = Test_silvm.fuzz_count in
  let jobs = min 8 (Domain.recommended_domain_count ()) in
  let results = run_battery ~jobs count in
  Array.iter
    (fun r ->
      if not (String.length r >= 3 && String.sub r (String.length r - 2) 2 = "ok")
      then Alcotest.failf "sharded fuzz case diverged: %s" r)
    results

let test_sharded_fuzz_jobs_identity () =
  (* the battery's rendered outcome must be byte-identical whatever the
     worker count: per-case seeds come from the index, never from
     execution order *)
  let count = 24 in
  let seq = run_battery ~jobs:1 count in
  let par = run_battery ~jobs:4 count in
  check_int "same case count" (Array.length seq) (Array.length par);
  Array.iteri
    (fun i s ->
      Alcotest.(check string) (Printf.sprintf "case %d" i) s par.(i))
    seq

(* ---------------- compile-once caching ---------------- *)

let servo_units () =
  let b = Servo_system.build () in
  let comp = Compile.compile b.Servo_system.controller in
  let arts =
    Target.generate ~mode:Blockgen.Pil ~name:"servo"
      ~project:b.Servo_system.project comp
  in
  [ arts.Target.model_h; arts.Target.model_c ]

let test_compile_cache_dedup () =
  Silvm_compile.cache_clear ();
  let units = servo_units () in
  let c1 = Silvm_compile.compile_cached units in
  let c2 = Silvm_compile.compile_cached units in
  check_bool "second submission reuses the compiled code" true (c1 == c2);
  let hits, misses = Silvm_compile.cache_stats () in
  check_int "one miss" 1 misses;
  check_int "one hit" 1 hits;
  (* independently regenerated but identical units share the entry *)
  let c3 = Silvm_compile.compile_cached (servo_units ()) in
  check_bool "regenerated identical units hit the cache" true (c1 == c3);
  (* two instances over one code are independent states *)
  let s1 = Silvm_compile.instantiate c1 in
  let s2 = Silvm_compile.instantiate c1 in
  ignore (Silvm_compile.call c1 s1 "servo_initialize" []);
  ignore (Silvm_compile.call c1 s2 "servo_initialize" []);
  Silvm_compile.set_sensor s1 0 2048;
  ignore (Silvm_compile.call c1 s1 "servo_step" []);
  check_int "s2 actuator untouched by s1's step" 0 (Silvm_compile.actuator s2 0)

let test_compile_cache_mutation_recompiles () =
  Silvm_compile.cache_clear ();
  let mk lines =
    let config =
      { Servo_system.default_config with Servo_system.encoder_lines = lines }
    in
    let b = Servo_system.build ~config () in
    let comp = Compile.compile b.Servo_system.controller in
    let arts =
      Target.generate ~mode:Blockgen.Pil ~name:"servo"
        ~project:b.Servo_system.project comp
    in
    Silvm_compile.compile_cached [ arts.Target.model_h; arts.Target.model_c ]
  in
  let a = mk 100 in
  let b = mk 200 in
  check_bool "mutated model does not share compiled code" true (a != b);
  let _, misses = Silvm_compile.cache_stats () in
  check_int "two distinct compilations" 2 misses

let test_compile_cache_run_map () =
  (* repeated submissions of the same content hash across a pool: the
     model-level Compile_cache and the SIL closure cache both dedup —
     worker races may duplicate a first compile but never one per job *)
  Compile_cache.clear ();
  Silvm_compile.cache_clear ();
  let b = Servo_system.build () in
  let jobs = 4 and n = 12 in
  let results =
    Exec_pool.with_pool ~workers:jobs (fun pool ->
        Exec_pool.run_map pool n (fun i ->
            let comp = Compile_cache.compile b.Servo_system.controller in
            let app =
              Silvm_app.create ~name:"servo"
                ~project:b.Servo_system.project comp
            in
            Silvm_app.initialize app;
            Silvm_app.set_sensor app 0 (i * 100);
            Silvm_app.step app;
            Silvm_app.actuator app 0))
  in
  check_int "all jobs ran" n (Array.length results);
  let mhits, mmisses, _ = Compile_cache.stats () in
  let shits, smisses = Silvm_compile.cache_stats () in
  check_int "model compiles accounted" n (mhits + mmisses);
  check_bool "model cache misses bounded by workers" true (mmisses <= jobs);
  check_int "sil compiles accounted" n (shits + smisses);
  check_bool "sil cache misses bounded by workers" true
    (smisses >= 1 && smisses <= jobs)

(* ---------------- unsupported constructs stay lazy ---------------- *)

let test_lazy_unsupported_functions () =
  (* the emitted pe_* helper bodies declare int64_t locals, outside the
     compiled subset; compilation of the unit must still succeed (their
     call sites are intrinsics) and the failure must only surface if
     such a function is actually invoked *)
  let code = Silvm_compile.compile_cached (servo_units ()) in
  let st = Silvm_compile.instantiate code in
  ignore (Silvm_compile.call code st "servo_initialize" []);
  ignore (Silvm_compile.call code st "servo_step" []);
  check_bool "helper is present" true (Silvm_compile.has_func code "pe_sat_add32");
  check_bool "invoking the 64-bit helper raises Unsupported" true
    (match
       Silvm_compile.call code st "pe_sat_add32"
         [ Silvm_value.of_int Silvm_value.i32ty 1;
           Silvm_value.of_int Silvm_value.i32ty 2 ]
     with
    | _ -> false
    | exception Silvm_interp.Unsupported _ -> true)

let qtest t = QCheck_alcotest.to_alcotest t

let suite =
  [
    Alcotest.test_case "servo: 1000-step tri-lockstep (float)" `Slow
      test_servo_both_1000;
    Alcotest.test_case "servo: 1000-step tri-lockstep (fixed)" `Slow
      test_servo_fixed_both_1000;
    Alcotest.test_case "isr-demo: 1000-step tri-lockstep" `Quick
      test_isr_demo_both_1000;
    Alcotest.test_case "batched run: golden PWM duty trace" `Slow
      test_batched_golden_duty;
    Alcotest.test_case "batched run: compiled trace == interpreted trace"
      `Slow test_batched_traces_identical;
    Alcotest.test_case "sharded fuzz battery (Exec_pool, tri-lockstep)" `Slow
      test_sharded_fuzz_battery;
    Alcotest.test_case "sharded fuzz: jobs=1 and jobs=4 byte-identical" `Slow
      test_sharded_fuzz_jobs_identity;
    Alcotest.test_case "compile cache: same hash, no recompilation" `Quick
      test_compile_cache_dedup;
    Alcotest.test_case "compile cache: mutated model recompiles" `Quick
      test_compile_cache_mutation_recompiles;
    Alcotest.test_case "compile cache: run_map submissions dedup" `Quick
      test_compile_cache_run_map;
    Alcotest.test_case "unsupported 64-bit helpers fail lazily" `Quick
      test_lazy_unsupported_functions;
    qtest prop_compiled_interp_float;
    qtest prop_compiled_interp_int;
  ]
