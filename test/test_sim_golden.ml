(* Golden MIL trace of the servo closed loop, recorded before the engine
   hot-path rework (group-order array, growable probe buffers): the
   rework and the observability instrumentation must not change a single
   sample. Values captured from the pre-change engine at full double
   precision. *)

let run_probed () =
  let built = Servo_system.build () in
  let comp = Compile.compile built.Servo_system.closed_loop in
  let sim = Sim.create ~solver_substeps:3 comp in
  Sim.probe_named sim built.Servo_system.speed_block 0;
  Sim.probe_named sim built.Servo_system.duty_block 0;
  Sim.run sim ~until:0.5 ();
  ( Sim.trace_named sim built.Servo_system.speed_block 0,
    Sim.trace_named sim built.Servo_system.duty_block 0 )

(* (index, value) spot checks + full-trace checksum, per signal *)
let golden_speed =
  ( 500,
    28059.772156443491,
    [
      (0, 0.0);
      (1, 1.3992724537535195);
      (166, 49.975399524687994);
      (250, 49.937178434186265);
      (333, 50.087540040294371);
      (498, 99.672210782080214);
      (499, 99.913573839870011);
    ] )

let golden_duty =
  ( 500,
    61.520333333333426,
    [
      (0, 0.062333333333333331);
      (1, 0.067666666666666667);
      (166, 0.108);
      (250, 0.10866666666666666);
      (333, 0.109);
      (498, 0.21666666666666667);
      (499, 0.19766666666666666);
    ] )

let check_golden name trace (n, sum, spots) =
  let arr = Array.of_list trace in
  Alcotest.(check int) (name ^ " sample count") n (Array.length arr);
  let s = Array.fold_left (fun acc (_, v) -> acc +. v) 0.0 arr in
  Alcotest.(check (float 1e-6)) (name ^ " checksum") sum s;
  List.iter
    (fun (i, expected) ->
      let _, v = arr.(i) in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "%s[%d]" name i)
        expected v)
    spots;
  (* probe times are the major-step grid, strictly increasing *)
  Array.iteri
    (fun i (t, _) ->
      if i > 0 then
        let tp, _ = arr.(i - 1) in
        if t <= tp then Alcotest.failf "%s: time not increasing at %d" name i)
    arr

let test_golden_trace () =
  let speed, duty = run_probed () in
  check_golden "speed" speed golden_speed;
  check_golden "duty" duty golden_duty

let test_instrumentation_transparent () =
  (* the same run with the observability layer enabled must produce the
     bit-identical trace *)
  let reference = run_probed () in
  Obs.reset ();
  Obs.set_enabled true;
  let instrumented =
    Fun.protect
      ~finally:(fun () ->
        Obs.set_enabled false;
        Obs.reset ())
      run_probed
  in
  Alcotest.(check bool) "traces bit-identical" true (reference = instrumented)

let test_reset_rerun_identical () =
  let built = Servo_system.build () in
  let comp = Compile.compile built.Servo_system.closed_loop in
  let sim = Sim.create ~solver_substeps:3 comp in
  Sim.probe_named sim built.Servo_system.speed_block 0;
  Sim.run sim ~until:0.2 ();
  let first = Sim.trace_named sim built.Servo_system.speed_block 0 in
  Sim.reset sim;
  Alcotest.(check int) "probe cleared by reset" 0
    (List.length (Sim.trace_named sim built.Servo_system.speed_block 0));
  Sim.run sim ~until:0.2 ();
  let second = Sim.trace_named sim built.Servo_system.speed_block 0 in
  Alcotest.(check bool) "rerun bit-identical" true (first = second)

let suite =
  [
    Alcotest.test_case "servo golden trace" `Quick test_golden_trace;
    Alcotest.test_case "instrumentation transparent" `Quick
      test_instrumentation_transparent;
    Alcotest.test_case "reset + rerun identical" `Quick
      test_reset_rerun_identical;
  ]
