(* Supervised execution: the error taxonomy, deadline cancellation,
   retry/backoff determinism, seeded orchestrator chaos, run_map error
   recording, the pool error hook, and the supervised fault campaign's
   jobs-count independence. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---- cancellation tokens ---- *)

let test_cancel_noop () =
  (* no token installed: poll is a no-op, not a crash *)
  for _ = 1 to 1000 do
    Cancel.poll ()
  done;
  check_bool "no ambient token" false (Cancel.active ())

let test_cancel_deadline () =
  let tok = Cancel.make ~deadline_s:0.02 () in
  match
    Cancel.with_token tok (fun () ->
        while true do
          Cancel.poll ()
        done)
  with
  | () -> Alcotest.fail "deadline never fired"
  | exception Cancel.Cancelled Cancel.Deadline -> ()

let test_cancel_kill () =
  let killed = Atomic.make false in
  let tok = Cancel.make ~killed () in
  Atomic.set killed true;
  (match Cancel.with_token tok (fun () -> Cancel.poll ()) with
  | () -> Alcotest.fail "kill never fired"
  | exception Cancel.Cancelled Cancel.Killed -> ());
  (* the token slot is restored even when the job raises *)
  check_bool "token slot restored" false (Cancel.active ())

(* ---- supervise: the taxonomy ---- *)

let test_supervise_ok () =
  let o = Supervise.supervise ~label:"ok" (fun () -> 41 + 1) in
  check_int "attempts" 1 o.Supervise.attempts;
  match o.Supervise.result with
  | Ok v -> check_int "value" 42 v
  | Error _ -> Alcotest.fail "unexpected error"

let test_supervise_transient_retry () =
  let calls = ref 0 in
  let o =
    Supervise.supervise
      ~policy:{ Supervise.default_policy with Supervise.backoff_base_s = 1e-4 }
      ~label:"flaky"
      (fun () ->
        incr calls;
        if !calls = 1 then raise (Supervise.Transient_failure "blip");
        "recovered")
  in
  check_int "two attempts" 2 o.Supervise.attempts;
  (match o.Supervise.result with
  | Ok v -> check_string "recovered" "recovered" v
  | Error _ -> Alcotest.fail "retry should have recovered");
  check_int "job ran twice" 2 !calls

let test_supervise_poisoned () =
  let o =
    Supervise.supervise
      ~policy:
        {
          Supervise.default_policy with
          Supervise.retries = 2;
          backoff_base_s = 1e-4;
        }
      ~label:"always-transient"
      (fun () -> raise (Supervise.Transient_failure "still down"))
  in
  check_int "all attempts spent" 3 o.Supervise.attempts;
  match o.Supervise.result with
  | Error (Supervise.Poisoned { attempts; last }) ->
      check_int "poisoned after 3" 3 attempts;
      check_string "last message" "still down" last;
      check_string "class" "poisoned"
        (Supervise.error_class (Supervise.Poisoned { attempts; last }))
  | _ -> Alcotest.fail "expected Poisoned"

let test_supervise_transient_no_retry () =
  let o =
    Supervise.supervise
      ~policy:{ Supervise.default_policy with Supervise.retries = 0 }
      ~label:"transient-0" (fun () ->
        raise (Supervise.Transient_failure "blip"))
  in
  check_int "one attempt" 1 o.Supervise.attempts;
  match o.Supervise.result with
  | Error (Supervise.Transient msg) -> check_string "message" "blip" msg
  | _ -> Alcotest.fail "expected Transient with retries = 0"

let test_supervise_crashed () =
  let o = Supervise.supervise ~label:"boom" (fun () -> failwith "boom") in
  check_int "no retry for crashes" 1 o.Supervise.attempts;
  match o.Supervise.result with
  | Error (Supervise.Crashed e as err) ->
      check_string "class" "crashed" (Supervise.error_class err);
      check_bool "carries the exn" true (e = Failure "boom")
  | _ -> Alcotest.fail "expected Crashed"

let test_supervise_bad_request () =
  let o =
    Supervise.supervise ~label:"bad" (fun () ->
        raise (Supervise.Bad_request "no such scenario"))
  in
  match o.Supervise.result with
  | Error err ->
      check_string "class" "bad_request" (Supervise.error_class err);
      check_string "message" "no such scenario" (Supervise.error_message err)
  | Ok _ -> Alcotest.fail "expected Bad_request"

let test_supervise_timeout () =
  let o =
    Supervise.supervise
      ~policy:
        { Supervise.default_policy with Supervise.deadline_s = Some 0.02 }
      ~label:"spin" (fun () ->
        while true do
          Cancel.poll ()
        done)
  in
  match o.Supervise.result with
  | Error (Supervise.Timeout d as err) ->
      check_string "class" "timeout" (Supervise.error_class err);
      Alcotest.(check (float 1e-9)) "deadline in record" 0.02 d
  | _ -> Alcotest.fail "expected Timeout"

let test_supervise_shed_on_kill () =
  let killed = Atomic.make true in
  let o =
    Supervise.supervise ~killed ~label:"killed" (fun () ->
        Cancel.poll ();
        Alcotest.fail "job should have been cancelled")
  in
  match o.Supervise.result with
  | Error (Supervise.Shed as err) ->
      check_string "class" "shed" (Supervise.error_class err)
  | _ -> Alcotest.fail "expected Shed"

(* ---- deterministic backoff ---- *)

let test_backoff_deterministic () =
  let policy =
    {
      Supervise.default_policy with
      Supervise.backoff_base_s = 0.01;
      backoff_max_s = 0.5;
      jitter_seed = 7;
    }
  in
  for attempt = 0 to 5 do
    let a = Supervise.backoff_s policy ~label:"job-x" ~attempt in
    let b = Supervise.backoff_s policy ~label:"job-x" ~attempt in
    Alcotest.(check (float 0.0)) "same (label, attempt) -> same backoff" a b;
    (* jitter in [0.5, 1.5) around the clamped exponential *)
    let base =
      Float.min policy.Supervise.backoff_max_s
        (policy.Supervise.backoff_base_s *. (2.0 ** float_of_int attempt))
    in
    check_bool "lower bound" true (a >= (0.5 *. base) -. 1e-12);
    check_bool "upper bound" true (a <= policy.Supervise.backoff_max_s)
  done;
  let a = Supervise.backoff_s policy ~label:"job-x" ~attempt:1 in
  let b = Supervise.backoff_s policy ~label:"job-y" ~attempt:1 in
  check_bool "different labels jitter differently" true (a <> b)

(* ---- seeded chaos ---- *)

let with_chaos ~seed ~rate f =
  Supervise.Chaos.configure ~seed ~rate;
  Fun.protect ~finally:Supervise.Chaos.disable f

let test_chaos_decide_deterministic () =
  with_chaos ~seed:42 ~rate:1.0 (fun () ->
      check_bool "enabled" true (Supervise.Chaos.enabled ());
      for attempt = 0 to 9 do
        let a = Supervise.Chaos.decide ~label:"L" ~attempt in
        let b = Supervise.Chaos.decide ~label:"L" ~attempt in
        check_bool "same decision twice" true (a = b);
        check_bool "rate 1.0 always injects" true (a <> None)
      done);
  with_chaos ~seed:42 ~rate:0.0 (fun () ->
      for attempt = 0 to 9 do
        check_bool "rate 0.0 never injects" true
          (Supervise.Chaos.decide ~label:"L" ~attempt = None)
      done);
  check_bool "disabled after" false (Supervise.Chaos.enabled ())

let test_chaos_under_supervise () =
  (* rate 1.0: every attempt gets an injection, so a supervised job
     either times out on delays, retries through transients into
     poisoning, or crashes — it never succeeds, and the outcome for a
     fixed (seed, label) is always the same class *)
  with_chaos ~seed:11 ~rate:1.0 (fun () ->
      let run () =
        Supervise.supervise
          ~policy:
            {
              Supervise.default_policy with
              Supervise.retries = 2;
              backoff_base_s = 1e-4;
            }
          ~label:"chaotic" (fun () -> "fine")
      in
      let a = run () and b = run () in
      let cls o =
        match o.Supervise.result with
        | Ok _ -> "ok"
        | Error e -> Supervise.error_class e
      in
      check_string "same outcome class" (cls a) (cls b);
      check_int "same attempts" a.Supervise.attempts b.Supervise.attempts)

(* ---- run_map error recording ---- *)

type item = Value of int | Failed of int * string

let record_map workers =
  Exec_pool.with_pool ~workers (fun pool ->
      Exec_pool.run_map pool
        ~on_error:(`Record (fun i e -> Failed (i, Printexc.to_string e)))
        20
        (fun i ->
          if i = 3 || i = 7 then failwith (Printf.sprintf "seed %d died" i);
          Value (i * i)))

let test_run_map_record () =
  let r1 = record_map 1 in
  let r4 = record_map 4 in
  check_int "campaign completes" 20 (Array.length r4);
  let crashed =
    Array.to_list r4
    |> List.filter_map (function Failed (i, _) -> Some i | Value _ -> None)
  in
  Alcotest.(check (list int)) "exactly seeds 3 and 7 crashed" [ 3; 7 ] crashed;
  Array.iteri
    (fun i x ->
      match x with
      | Value v -> check_int "square" (i * i) v
      | Failed (i', msg) ->
          check_int "index recorded" i i';
          check_bool "message recorded" true
            (msg = Printf.sprintf "Failure(\"seed %d died\")" i))
    r4;
  check_bool "byte-identical --jobs 1 vs 4" true (r1 = r4)

let test_run_map_abort_still_raises () =
  match
    Exec_pool.with_pool ~workers:4 (fun pool ->
        Exec_pool.run_map pool 20 (fun i ->
            if i >= 5 then failwith (Printf.sprintf "die %d" i) else i))
  with
  | _ -> Alcotest.fail "abort mode should re-raise"
  | exception Failure msg ->
      (* lowest failing index wins, whatever the schedule *)
      check_string "deterministic abort" "die 5" msg

(* ---- submit error hook ---- *)

let test_submit_error_hook () =
  Exec_pool.with_pool ~workers:2 (fun pool ->
      let seen = Atomic.make [] in
      Exec_pool.set_error_hook pool (fun e ->
          let rec push () =
            let cur = Atomic.get seen in
            if not (Atomic.compare_and_set seen cur (Printexc.to_string e :: cur))
            then push ()
          in
          push ());
      let done_ = Atomic.make 0 in
      for i = 1 to 10 do
        Exec_pool.submit pool (fun () ->
            Fun.protect
              ~finally:(fun () -> Atomic.incr done_)
              (fun () -> if i mod 2 = 0 then failwith "task boom"))
      done;
      while Atomic.get done_ < 10 do
        Domain.cpu_relax ()
      done;
      check_int "hook saw every failure" 5 (List.length (Atomic.get seen));
      check_bool "worker survived and kept serving" true
        (List.for_all (fun m -> m = "Failure(\"task boom\")") (Atomic.get seen)))

(* ---- supervised campaign: jobs-count independence ---- *)

let test_campaign_supervised_identical () =
  Unix.putenv "ECSD_WALL_ZERO" "1";
  Fun.protect ~finally:(fun () ->
      Unix.putenv "ECSD_WALL_ZERO" "";
      Supervise.Chaos.disable ())
  @@ fun () ->
  Supervise.Chaos.configure ~seed:9 ~rate:0.6;
  let scenario =
    match Fault_scenario.find "encoder-dropout" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let policy =
    {
      Supervise.default_policy with
      Supervise.retries = 1;
      backoff_base_s = 1e-4;
    }
  in
  let mk_subject () =
    fst (Servo_system.faultsim_subject ~scenario ())
  in
  let seq =
    Fault_campaign.run ~t_end:0.3 ~seeds:6 ~scenario ~policy (mk_subject ())
  in
  let par =
    Exec_pool.with_pool ~workers:4 (fun pool ->
        Fault_campaign.run_parallel ~t_end:0.3 ~seeds:6 ~pool ~scenario
          ~policy mk_subject)
  in
  let doc r = Bench_json.to_string (Fault_campaign.to_json ~model:"servo" r) in
  check_string "byte-identical report, 1 vs 4 workers" (doc seq) (doc par);
  check_int "every seed accounted for" 6
    (List.length seq.Fault_campaign.runs
    + List.length seq.Fault_campaign.failures);
  (* chaos at rate 0.6 with seed 9 provably perturbs this campaign:
     either a failure row or a retry must have happened, else the test
     would pass vacuously *)
  check_bool "chaos actually did something" true
    (seq.Fault_campaign.failures <> [] || seq.Fault_campaign.retries_total > 0)

let suite =
  [
    Alcotest.test_case "cancel no-op without token" `Quick test_cancel_noop;
    Alcotest.test_case "cancel deadline" `Quick test_cancel_deadline;
    Alcotest.test_case "cancel kill + slot restore" `Quick test_cancel_kill;
    Alcotest.test_case "supervise ok" `Quick test_supervise_ok;
    Alcotest.test_case "transient retries then recovers" `Quick
      test_supervise_transient_retry;
    Alcotest.test_case "poisoned after retries exhausted" `Quick
      test_supervise_poisoned;
    Alcotest.test_case "transient with retries=0" `Quick
      test_supervise_transient_no_retry;
    Alcotest.test_case "crashed" `Quick test_supervise_crashed;
    Alcotest.test_case "bad request" `Quick test_supervise_bad_request;
    Alcotest.test_case "deadline timeout" `Quick test_supervise_timeout;
    Alcotest.test_case "shed on kill" `Quick test_supervise_shed_on_kill;
    Alcotest.test_case "deterministic backoff" `Quick
      test_backoff_deterministic;
    Alcotest.test_case "chaos decide deterministic" `Quick
      test_chaos_decide_deterministic;
    Alcotest.test_case "chaos outcome deterministic" `Quick
      test_chaos_under_supervise;
    Alcotest.test_case "run_map record mode" `Quick test_run_map_record;
    Alcotest.test_case "run_map abort mode" `Quick
      test_run_map_abort_still_raises;
    Alcotest.test_case "submit error hook" `Quick test_submit_error_hook;
    Alcotest.test_case "supervised campaign jobs-independent" `Quick
      test_campaign_supervised_identical;
  ]
